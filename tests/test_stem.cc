// Stochastic EM: parameter recovery from incomplete traces, M-step correctness, and the
// waiting-time estimation phase.

#include "qnet/infer/stem.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "qnet/infer/estimators.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/check.h"
#include "qnet/support/math.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

TEST(MStep, MatchesCompleteDataMle) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
  Rng rng(3);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(2.0, 300), rng);
  const auto mstep = StemEstimator::MStep(log);
  const auto mle = CompleteDataRatesMle(log);
  ASSERT_EQ(mstep.size(), mle.size());
  for (std::size_t q = 0; q < mle.size(); ++q) {
    EXPECT_NEAR(mstep[q], mle[q], 1e-9) << "queue " << q;
  }
  // And the MLE should be near the generating rates.
  EXPECT_NEAR(mle[0], 2.0, 0.3);
  EXPECT_NEAR(mle[1], 4.0, 0.6);
  EXPECT_NEAR(mle[2], 3.0, 0.45);
}

TEST(MStep, ArrivalTimeOriginAnchorsLambdaWindowLocally) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
  Rng rng(3);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(2.0, 300), rng);
  const auto absolute = StemEstimator::MStep(log);
  // Explicit zero origin is the default, bit for bit.
  const auto explicit_zero = StemEstimator::MStep(log, 1e-9, 0.0);
  ASSERT_EQ(absolute.size(), explicit_zero.size());
  for (std::size_t q = 0; q < absolute.size(); ++q) {
    EXPECT_EQ(absolute[q], explicit_zero[q]) << "queue " << q;
  }
  // The queue-0 service sum telescopes to the last entry time, so re-anchoring the
  // origin rescales lambda to n / (last_entry - origin) and touches nothing else.
  const double last_entry = log.TaskEntryTime(log.NumTasks() - 1);
  const double origin = 0.25 * last_entry;
  const auto anchored = StemEstimator::MStep(log, 1e-9, origin);
  EXPECT_NEAR(anchored[0],
              static_cast<double>(log.NumTasks()) / (last_entry - origin), 1e-9);
  for (std::size_t q = 1; q < absolute.size(); ++q) {
    EXPECT_EQ(anchored[q], absolute[q]) << "queue " << q;
  }
  // An origin at/after the last entry leaves no window-local span (e.g. a lane's share
  // of a window consisting solely of late-merged records): fall back to the absolute
  // anchor instead of exploding lambda against the service_sum_floor.
  const auto degenerate = StemEstimator::MStep(log, 1e-9, 2.0 * last_entry);
  EXPECT_EQ(degenerate[0], absolute[0]);
}

TEST(Stem, FullObservationReducesToCompleteDataMle) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
  Rng rng(5);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 200), rng);
  const Observation obs = Observation::FullyObserved(truth);
  StemOptions options;
  options.iterations = 5;
  options.burn_in = 1;
  options.wait_sweeps = 0;
  const StemResult result =
      StemEstimator(options).Run(truth, obs, {1.0, 1.0, 1.0}, rng);
  const auto mle = CompleteDataRatesMle(truth);
  for (std::size_t q = 0; q < mle.size(); ++q) {
    EXPECT_NEAR(result.rates[q], mle[q], 1e-6) << "queue " << q;
  }
  EXPECT_EQ(result.latent_arrivals, 0u);
}

TEST(Stem, RecoversRatesFromHalfObservedTandem) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {5.0, 4.0});
  const auto true_rates = net.ExponentialRates();
  Rng rng(7);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 600), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.5;
  const Observation obs = scheme.Apply(truth, rng);

  StemOptions options;
  options.iterations = 120;
  options.burn_in = 40;
  options.wait_sweeps = 0;
  const StemResult result =
      StemEstimator(options).Run(truth, obs, {1.0, 1.0, 1.0}, rng);
  for (std::size_t q = 0; q < true_rates.size(); ++q) {
    EXPECT_NEAR(result.mean_service[q], 1.0 / true_rates[q], 0.2 / true_rates[q])
        << "queue " << q;
  }
}

TEST(Stem, RecoversServiceMeansAtLowObservationFraction) {
  // The paper's headline regime: a small fraction of tasks observed.
  const QueueingNetwork net = MakeTandemNetwork(2.0, {5.0, 4.0});
  Rng rng(11);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 1000), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.1;
  const Observation obs = scheme.Apply(truth, rng);
  StemOptions options;
  options.iterations = 300;
  options.burn_in = 120;
  options.wait_sweeps = 0;
  const StemResult result =
      StemEstimator(options).Run(truth, obs, {1.0, 1.0, 1.0}, rng);
  // Looser tolerance: only ~100 tasks carry direct timing information.
  EXPECT_NEAR(result.mean_service[1], 0.2, 0.1);
  EXPECT_NEAR(result.mean_service[2], 0.25, 0.12);
  EXPECT_NEAR(1.0 / result.rates[0], 0.5, 0.15);  // mean interarrival
}

TEST(Stem, WaitingTimeEstimatesTrackRealizedWaits) {
  // Moderately loaded single queue; realized mean wait is stable and should be recovered.
  const QueueingNetwork net = MakeSingleQueueNetwork(3.0, 5.0);  // rho = 0.6
  Rng rng(13);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(3.0, 800), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.25;
  const Observation obs = scheme.Apply(truth, rng);
  StemOptions options;
  options.iterations = 120;
  options.burn_in = 40;
  options.wait_sweeps = 60;
  const StemResult result = StemEstimator(options).Run(truth, obs, {1.0, 1.0}, rng);
  const double realized_wait = truth.PerQueueMeanWait()[1];
  ASSERT_FALSE(result.mean_wait.empty());
  EXPECT_NEAR(result.mean_wait[1], realized_wait, 0.35 * realized_wait + 0.03);
}

TEST(Stem, KeepsArrivalRateFixedWhenAsked) {
  const QueueingNetwork net = MakeSingleQueueNetwork(2.0, 6.0);
  Rng rng(17);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 150), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.5;
  const Observation obs = scheme.Apply(truth, rng);
  StemOptions options;
  options.iterations = 30;
  options.burn_in = 10;
  options.wait_sweeps = 0;
  options.estimate_arrival_rate = false;
  const StemResult result = StemEstimator(options).Run(truth, obs, {2.5, 1.0}, rng);
  EXPECT_DOUBLE_EQ(result.rates[0], 2.5);
  for (const auto& iteration : result.rate_trace) {
    EXPECT_DOUBLE_EQ(iteration[0], 2.5);
  }
}

TEST(Stem, RateTraceHasExpectedShape) {
  const QueueingNetwork net = MakeSingleQueueNetwork(2.0, 6.0);
  Rng rng(19);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 100), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.3;
  const Observation obs = scheme.Apply(truth, rng);
  StemOptions options;
  options.iterations = 25;
  options.burn_in = 5;
  options.wait_sweeps = 0;
  const StemResult result = StemEstimator(options).Run(truth, obs, {1.0, 1.0}, rng);
  EXPECT_EQ(result.rate_trace.size(), 25u);
  EXPECT_EQ(result.rate_trace[0].size(), 2u);
  ASSERT_TRUE(result.final_state.has_value());
  std::string why;
  EXPECT_TRUE(result.final_state->IsFeasible(1e-6, &why)) << why;
  EXPECT_THROW(
      {
        StemOptions bad;
        bad.iterations = 5;
        bad.burn_in = 5;
        StemEstimator(bad).Run(truth, obs, {1.0, 1.0}, rng);
      },
      Error);
}

// Recomputes the early-stop point from a rate trace alone: the stop rule is a pure
// function of the trace, so this must reproduce StemResult::iterations_run exactly.
std::size_t StopPointFromTrace(const std::vector<std::vector<double>>& trace,
                               std::size_t burn_in, double tol, std::size_t patience) {
  const std::size_t num_queues = trace.empty() ? 0 : trace[0].size();
  std::vector<double> accum(num_queues, 0.0);
  std::vector<double> prev_mean(num_queues, 0.0);
  std::size_t accum_count = 0;
  std::size_t streak = 0;
  for (std::size_t iter = 0; iter < trace.size(); ++iter) {
    if (iter < burn_in) {
      continue;
    }
    for (std::size_t q = 0; q < num_queues; ++q) {
      accum[q] += trace[iter][q];
    }
    ++accum_count;
    double max_rel = 0.0;
    for (std::size_t q = 0; q < num_queues; ++q) {
      const double mean = accum[q] / static_cast<double>(accum_count);
      if (accum_count >= 2) {
        max_rel = std::max(max_rel, std::abs(mean - prev_mean[q]) /
                                        std::max(std::abs(prev_mean[q]), 1e-12));
      }
      prev_mean[q] = mean;
    }
    if (accum_count >= 2) {
      streak = max_rel <= tol ? streak + 1 : 0;
      if (streak >= patience) {
        return iter + 1;
      }
    }
  }
  return trace.size();
}

TEST(Stem, ZeroConvergenceTolIsBitExactFullRun) {
  // tol = 0 (the default) must leave the sampler path untouched: same seed, same bits,
  // full iteration count reported.
  const QueueingNetwork net = MakeTandemNetwork(2.0, {5.0, 4.0});
  Rng sim_rng(29);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 200), sim_rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.4;
  const Observation obs = scheme.Apply(truth, sim_rng);
  StemOptions options;
  options.iterations = 20;
  options.burn_in = 5;
  options.wait_sweeps = 0;
  ASSERT_EQ(options.convergence_tol, 0.0);

  Rng rng_a(31);
  const StemResult a = StemEstimator(options).Run(truth, obs, {1.0, 1.0, 1.0}, rng_a);
  Rng rng_b(31);
  const StemResult b = StemEstimator(options).Run(truth, obs, {1.0, 1.0, 1.0}, rng_b);
  EXPECT_EQ(a.rates, b.rates);
  EXPECT_EQ(a.rate_trace, b.rate_trace);
  EXPECT_EQ(a.iterations_run, 20u);
  EXPECT_EQ(b.iterations_run, 20u);
}

TEST(Stem, EarlyStopTraceIsBitExactPrefixOfFullRun) {
  // The stop decision reads only the already-produced trace, never the RNG, so the
  // early-stopped run replays the full run's iterations bit-for-bit up to its stop
  // point, and its averaged rates equal the prefix average exactly.
  const QueueingNetwork net = MakeTandemNetwork(2.0, {5.0, 4.0});
  Rng sim_rng(37);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 300), sim_rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.4;
  const Observation obs = scheme.Apply(truth, sim_rng);

  StemOptions full_options;
  full_options.iterations = 60;
  full_options.burn_in = 8;
  full_options.wait_sweeps = 0;
  Rng full_rng(41);
  const StemResult full =
      StemEstimator(full_options).Run(truth, obs, {1.0, 1.0, 1.0}, full_rng);
  ASSERT_EQ(full.iterations_run, 60u);

  StemOptions stopped_options = full_options;
  stopped_options.convergence_tol = 0.02;
  stopped_options.convergence_patience = 3;
  Rng stopped_rng(41);
  const StemResult stopped =
      StemEstimator(stopped_options).Run(truth, obs, {1.0, 1.0, 1.0}, stopped_rng);

  ASSERT_EQ(stopped.iterations_run, stopped.rate_trace.size());
  ASSERT_LT(stopped.iterations_run, 60u) << "tolerance chosen to trigger an early stop";
  ASSERT_GE(stopped.iterations_run,
            full_options.burn_in + stopped_options.convergence_patience + 1);
  for (std::size_t iter = 0; iter < stopped.iterations_run; ++iter) {
    EXPECT_EQ(stopped.rate_trace[iter], full.rate_trace[iter]) << "iteration " << iter;
  }
  // Averaged rates = exact average of the post-burn-in prefix, in accumulation order.
  std::vector<double> expect_rates(3, 0.0);
  const std::size_t kept = stopped.iterations_run - full_options.burn_in;
  for (std::size_t iter = full_options.burn_in; iter < stopped.iterations_run; ++iter) {
    for (std::size_t q = 0; q < 3; ++q) {
      expect_rates[q] += stopped.rate_trace[iter][q];
    }
  }
  for (std::size_t q = 0; q < 3; ++q) {
    EXPECT_EQ(stopped.rates[q], expect_rates[q] / static_cast<double>(kept));
  }
  // And the estimate stays close to the full run's (that is the point of stopping).
  for (std::size_t q = 1; q < 3; ++q) {
    EXPECT_NEAR(stopped.rates[q], full.rates[q], 0.15 * full.rates[q]);
  }
}

TEST(Stem, EarlyStopRuleIsPureFunctionOfTrace) {
  const QueueingNetwork net = MakeSingleQueueNetwork(2.0, 6.0);
  Rng sim_rng(43);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 200), sim_rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.5;
  const Observation obs = scheme.Apply(truth, sim_rng);

  for (const double tol : {0.05, 0.01}) {
    StemOptions options;
    options.iterations = 50;
    options.burn_in = 5;
    options.wait_sweeps = 0;
    options.convergence_tol = tol;
    options.convergence_patience = 2;
    Rng rng(47);
    const StemResult result = StemEstimator(options).Run(truth, obs, {1.0, 1.0}, rng);
    EXPECT_EQ(result.iterations_run,
              StopPointFromTrace(result.rate_trace, options.burn_in, tol,
                                 options.convergence_patience))
        << "tol=" << tol;
  }
}

TEST(Stem, VarianceNoWorseThanObservedMeanBaseline) {
  // Directional version of the paper's in-text claim: across repetitions, StEM's service
  // estimates should not have materially larger spread than the observed-true-service
  // baseline, despite using strictly less information.
  const QueueingNetwork net = MakeSingleQueueNetwork(2.0, 5.0);
  RunningStat stem_estimates;
  RunningStat baseline_estimates;
  for (int rep = 0; rep < 8; ++rep) {
    Rng rng(100 + static_cast<std::uint64_t>(rep));
    const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 400), rng);
    TaskSamplingScheme scheme;
    scheme.fraction = 0.15;
    const Observation obs = scheme.Apply(truth, rng);
    StemOptions options;
    options.iterations = 80;
    options.burn_in = 30;
    options.wait_sweeps = 0;
    const StemResult result = StemEstimator(options).Run(truth, obs, {1.0, 1.0}, rng);
    stem_estimates.Add(result.mean_service[1]);
    baseline_estimates.Add(ObservedMeanService(truth, obs.observed_tasks).mean_service[1]);
  }
  // Both should be near the truth...
  EXPECT_NEAR(stem_estimates.Mean(), 0.2, 0.05);
  EXPECT_NEAR(baseline_estimates.Mean(), 0.2, 0.05);
  // ...and StEM's spread should be comparable or better (paper: ~2/3 the variance).
  EXPECT_LT(stem_estimates.Variance(), 3.0 * baseline_estimates.Variance() + 1e-6);
}

}  // namespace
}  // namespace qnet
