// Colored sharded sweeps: the conflict-coloring invariant (no two same-color moves share
// a footprint event), schedule partition integrity, bit-identical results for any thread
// count on M/M/1 and a 3-queue tandem, posterior agreement with the sequential driver,
// and the K-chains × S-shards composition through RunParallelChains / StEM.

#include "qnet/infer/sharded_sweep.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "qnet/infer/general_gibbs.h"
#include "qnet/infer/gibbs.h"
#include "qnet/infer/initializer.h"
#include "qnet/infer/parallel_chains.h"
#include "qnet/infer/posterior.h"
#include "qnet/infer/stem.h"
#include "qnet/model/builders.h"
#include "qnet/model/conflict.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

struct Fixture {
  EventLog truth;
  Observation obs;
  std::vector<double> rates;
  EventLog init;
};

Fixture MakeFixture(const QueueingNetwork& net, double arrival_rate, std::size_t tasks,
                    double fraction, std::uint64_t seed) {
  Rng rng(seed);
  EventLog truth = SimulateWorkload(net, PoissonArrivals(arrival_rate, tasks), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = fraction;
  Observation obs = scheme.Apply(truth, rng);
  std::vector<double> rates = net.ExponentialRates();
  EventLog init = InitializeFeasible(truth, obs, rates, rng);
  return Fixture{std::move(truth), std::move(obs), std::move(rates), std::move(init)};
}

Fixture MakeMm1Fixture(std::size_t tasks = 100, double fraction = 0.2) {
  return MakeFixture(MakeSingleQueueNetwork(2.0, 4.0), 2.0, tasks, fraction, 5);
}

Fixture MakeTandemFixture(std::size_t tasks = 80, double fraction = 0.2) {
  return MakeFixture(MakeTandemNetwork(2.0, {4.0, 3.0, 5.0}), 2.0, tasks, fraction, 7);
}

// --- Conflict coloring -----------------------------------------------------------------

void ExpectColoringConflictFree(const EventLog& log, const std::vector<SweepMove>& moves) {
  const MoveColoring coloring = ColorSweepMoves(log, moves);
  ASSERT_EQ(coloring.color.size(), moves.size());
  ASSERT_GT(coloring.num_colors, 0);
  // Per color class, every footprint event must be touched exactly once: mark and check.
  for (int c = 0; c < coloring.num_colors; ++c) {
    std::vector<char> touched(log.NumEvents(), 0);
    for (std::size_t i = 0; i < moves.size(); ++i) {
      if (coloring.color[i] != c) {
        continue;
      }
      for (EventId e : log.ComputeMoveFootprint(moves[i]).Events()) {
        EXPECT_FALSE(touched[static_cast<std::size_t>(e)])
            << "color " << c << " has two moves sharing footprint event " << e;
        touched[static_cast<std::size_t>(e)] = 1;
      }
    }
  }
}

TEST(ConflictColoring, SameColorMovesNeverShareFootprintEventsMm1) {
  const Fixture fixture = MakeMm1Fixture();
  const GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates);
  ExpectColoringConflictFree(sampler.State(), sampler.SweepMoves());
}

TEST(ConflictColoring, SameColorMovesNeverShareFootprintEventsTandem) {
  const Fixture fixture = MakeTandemFixture();
  const GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates);
  ExpectColoringConflictFree(sampler.State(), sampler.SweepMoves());
}

TEST(ConflictColoring, AdjacentQueueNeighborsConflict) {
  // Arrival moves on e and nu(e) always conflict (rho(nu(e)) == e lies in both
  // footprints), so a dense latent scan needs more than one color.
  const Fixture fixture = MakeTandemFixture(60, 0.0);  // everything latent
  const GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates);
  const std::vector<SweepMove> moves = sampler.SweepMoves();
  const MoveColoring coloring = ColorSweepMoves(sampler.State(), moves);
  EXPECT_GE(coloring.num_colors, 2);
  for (std::size_t i = 0; i < moves.size(); ++i) {
    for (std::size_t j = i + 1; j < moves.size(); ++j) {
      const MoveFootprint a = sampler.State().ComputeMoveFootprint(moves[i]);
      const MoveFootprint b = sampler.State().ComputeMoveFootprint(moves[j]);
      if (a.Intersects(b)) {
        EXPECT_NE(coloring.color[i], coloring.color[j])
            << "conflicting moves " << i << " and " << j << " share a color";
      }
    }
  }
}

TEST(ConflictColoring, EmptyMoveListColorsTrivially) {
  const Fixture fixture = MakeMm1Fixture();
  const MoveColoring coloring = ColorSweepMoves(fixture.init, {});
  EXPECT_EQ(coloring.num_colors, 0);
  EXPECT_TRUE(coloring.color.empty());
}

// --- Footprints ------------------------------------------------------------------------

TEST(MoveFootprint, ArrivalFootprintCoversReadAndWriteSet) {
  const Fixture fixture = MakeTandemFixture();
  const EventLog& log = fixture.init;
  for (EventId e = 0; static_cast<std::size_t>(e) < log.NumEvents(); ++e) {
    const Event& ev = log.At(e);
    if (ev.initial) {
      continue;
    }
    const MoveFootprint fp = log.ComputeMoveFootprint({MoveKind::kArrival, e});
    ASSERT_LE(fp.count, MoveFootprint::kMaxEvents);
    EXPECT_TRUE(fp.Contains(e));
    EXPECT_TRUE(fp.Contains(ev.pi));  // d_pi is written
    const Event& pi = log.At(ev.pi);
    if (pi.rho != kNoEvent) {
      EXPECT_TRUE(fp.Contains(pi.rho));
    }
    if (ev.rho != kNoEvent) {
      EXPECT_TRUE(fp.Contains(ev.rho));
    }
    if (ev.nu != kNoEvent) {
      EXPECT_TRUE(fp.Contains(ev.nu));
    }
    if (pi.nu != kNoEvent) {
      EXPECT_TRUE(fp.Contains(pi.nu));
    }
    // No duplicates.
    for (std::size_t i = 0; i < fp.count; ++i) {
      for (std::size_t j = i + 1; j < fp.count; ++j) {
        EXPECT_NE(fp.events[i], fp.events[j]);
      }
    }
  }
}

TEST(MoveFootprint, FinalDepartureFootprintIsBoundedByThree) {
  const Fixture fixture = MakeMm1Fixture();
  const EventLog& log = fixture.init;
  for (EventId e = 0; static_cast<std::size_t>(e) < log.NumEvents(); ++e) {
    const Event& ev = log.At(e);
    if (ev.tau != kNoEvent) {
      continue;
    }
    const MoveFootprint fp = log.ComputeMoveFootprint({MoveKind::kFinalDeparture, e});
    EXPECT_LE(fp.count, 3u);
    EXPECT_TRUE(fp.Contains(e));
    if (ev.rho != kNoEvent) {
      EXPECT_TRUE(fp.Contains(ev.rho));
    }
    if (ev.nu != kNoEvent) {
      EXPECT_TRUE(fp.Contains(ev.nu));
    }
  }
}

TEST(MoveFootprint, RejectsInvalidMoves) {
  const Fixture fixture = MakeMm1Fixture();
  const EventLog& log = fixture.init;
  const EventId initial = log.TaskEvents(0).front();
  EXPECT_THROW(log.ComputeMoveFootprint({MoveKind::kArrival, initial}), Error);
  // First visit of a multi-visit task has a successor: no final-departure move.
  const EventId first_visit = log.TaskEvents(0)[1];
  if (log.At(first_visit).tau != kNoEvent) {
    EXPECT_THROW(log.ComputeMoveFootprint({MoveKind::kFinalDeparture, first_visit}), Error);
  }
}

// --- Scheduler partition ---------------------------------------------------------------

TEST(ShardedSweep, SchedulePartitionsEveryMoveExactlyOnce) {
  const Fixture fixture = MakeTandemFixture();
  const GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates);
  const std::vector<SweepMove> moves = sampler.SweepMoves();
  ShardedSweepOptions options;
  options.shards = 4;
  options.threads = 1;
  const ShardedSweepScheduler scheduler(sampler.State(), moves, options);
  EXPECT_EQ(scheduler.NumMoves(), moves.size());

  std::vector<SweepMove> scheduled;
  for (std::size_t c = 0; c < scheduler.NumColors(); ++c) {
    for (std::size_t s = 0; s < scheduler.NumShards(); ++s) {
      const auto bucket = scheduler.Bucket(c, s);
      scheduled.insert(scheduled.end(), bucket.begin(), bucket.end());
    }
  }
  ASSERT_EQ(scheduled.size(), moves.size());
  const auto key = [](const SweepMove& m) {
    return (static_cast<std::int64_t>(m.event) << 1) |
           (m.kind == MoveKind::kFinalDeparture ? 1 : 0);
  };
  std::vector<std::int64_t> a, b;
  for (const SweepMove& m : moves) a.push_back(key(m));
  for (const SweepMove& m : scheduled) b.push_back(key(m));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(ShardedSweep, RunVisitsEveryMoveOnceAndOnlyConflictFreeBucketsConcurrently) {
  const Fixture fixture = MakeMm1Fixture();
  const GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates);
  const std::vector<SweepMove> moves = sampler.SweepMoves();
  ShardedSweepOptions options;
  options.shards = 3;
  options.threads = 1;
  ShardedSweepScheduler scheduler(sampler.State(), moves, options);
  std::vector<int> visits(fixture.init.NumEvents() * 2, 0);
  scheduler.Run(
      [&](const SweepMove& move, Rng&) {
        ++visits[static_cast<std::size_t>(move.event) * 2 +
                 (move.kind == MoveKind::kFinalDeparture ? 1 : 0)];
      },
      /*sweep_seed=*/1);
  std::size_t total = 0;
  for (int v : visits) {
    EXPECT_LE(v, 1);
    total += static_cast<std::size_t>(v);
  }
  EXPECT_EQ(total, moves.size());
}

TEST(ShardedSweep, EmptyMoveListRuns) {
  const Fixture fixture = MakeMm1Fixture();
  ShardedSweepScheduler scheduler(fixture.init, {}, {});
  scheduler.Run([](const SweepMove&, Rng&) { FAIL() << "no moves to apply"; }, 3);
  EXPECT_EQ(scheduler.NumMoves(), 0u);
  EXPECT_EQ(scheduler.NumColors(), 0u);
}

// --- Determinism across thread counts --------------------------------------------------

struct SweepRunResult {
  EventLog final_state;
  std::vector<double> mean_service;
  std::vector<double> mean_wait;
};

SweepRunResult RunSharded(const Fixture& fixture, std::size_t threads, std::size_t shards,
                          std::uint64_t seed, int sweeps) {
  GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates);
  ShardedSweepOptions options;
  options.shards = shards;
  options.threads = threads;
  sampler.EnableShardedSweeps(options);
  EXPECT_TRUE(sampler.ShardedSweepsEnabled());
  Rng rng(seed);
  PosteriorSummary summary(fixture.init.NumQueues());
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    sampler.Sweep(rng);
    summary.Accumulate(sampler.State());
  }
  return SweepRunResult{sampler.State(), summary.MeanService(), summary.MeanWait()};
}

void ExpectBitIdentical(const SweepRunResult& a, const SweepRunResult& b) {
  ASSERT_EQ(a.final_state.NumEvents(), b.final_state.NumEvents());
  for (EventId e = 0; static_cast<std::size_t>(e) < a.final_state.NumEvents(); ++e) {
    // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the contract is bit-identical, not merely close.
    EXPECT_EQ(a.final_state.Arrival(e), b.final_state.Arrival(e)) << "event " << e;
    EXPECT_EQ(a.final_state.Departure(e), b.final_state.Departure(e)) << "event " << e;
  }
  ASSERT_EQ(a.mean_service.size(), b.mean_service.size());
  for (std::size_t q = 0; q < a.mean_service.size(); ++q) {
    EXPECT_EQ(a.mean_service[q], b.mean_service[q]) << "q=" << q;
    EXPECT_EQ(a.mean_wait[q], b.mean_wait[q]) << "q=" << q;
  }
}

TEST(ShardedSweep, BitIdenticalForAnyThreadCountMm1) {
  const Fixture fixture = MakeMm1Fixture();
  const SweepRunResult one = RunSharded(fixture, 1, 4, 321, 40);
  const SweepRunResult two = RunSharded(fixture, 2, 4, 321, 40);
  const SweepRunResult four = RunSharded(fixture, 4, 4, 321, 40);
  ExpectBitIdentical(one, two);
  ExpectBitIdentical(one, four);
}

TEST(ShardedSweep, BitIdenticalForAnyThreadCountTandem) {
  const Fixture fixture = MakeTandemFixture();
  const SweepRunResult one = RunSharded(fixture, 1, 4, 77, 40);
  const SweepRunResult two = RunSharded(fixture, 2, 4, 77, 40);
  const SweepRunResult four = RunSharded(fixture, 4, 4, 77, 40);
  ExpectBitIdentical(one, two);
  ExpectBitIdentical(one, four);
}

TEST(ShardedSweep, GeneralSamplerBitIdenticalAcrossThreadCounts) {
  const Fixture fixture = MakeTandemFixture();
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0, 5.0});
  const auto run = [&](std::size_t threads) {
    GeneralGibbsSampler sampler(fixture.init, fixture.obs, net);
    ShardedSweepOptions options;
    options.shards = 4;
    options.threads = threads;
    sampler.EnableShardedSweeps(options);
    Rng rng(99);
    for (int sweep = 0; sweep < 15; ++sweep) {
      sampler.Sweep(rng);
    }
    return sampler.State();
  };
  const EventLog serial = run(1);
  const EventLog parallel = run(4);
  for (EventId e = 0; static_cast<std::size_t>(e) < serial.NumEvents(); ++e) {
    EXPECT_EQ(serial.Arrival(e), parallel.Arrival(e)) << "event " << e;
    EXPECT_EQ(serial.Departure(e), parallel.Departure(e)) << "event " << e;
  }
}

TEST(ShardedSweep, SweepsStayFeasible) {
  const Fixture fixture = MakeTandemFixture();
  GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates);
  sampler.EnableShardedSweeps({.shards = 4, .threads = 2});
  Rng rng(13);
  for (int sweep = 0; sweep < 25; ++sweep) {
    sampler.Sweep(rng);
  }
  std::string why;
  EXPECT_TRUE(sampler.State().IsFeasible(1e-6, &why)) << why;
}

// --- Statistical agreement with the sequential driver ----------------------------------

TEST(ShardedSweep, MatchesSequentialPosteriorOnMm1) {
  // Same posterior two ways: the colored sharded scan and the sequential scan are both
  // valid systematic Gibbs scans, so their post-burn-in means must agree within Monte
  // Carlo error (and sit near the true mean service 1/mu = 0.25).
  const Fixture fixture = MakeMm1Fixture(150, 0.25);
  const int kSweeps = 1200;
  const int kBurnIn = 200;

  GibbsSampler sequential(fixture.init, fixture.obs, fixture.rates);
  Rng seq_rng(41);
  PosteriorSummary seq_summary(fixture.init.NumQueues());
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    sequential.Sweep(seq_rng);
    if (sweep >= kBurnIn) {
      seq_summary.Accumulate(sequential.State());
    }
  }

  GibbsSampler sharded(fixture.init, fixture.obs, fixture.rates);
  sharded.EnableShardedSweeps({.shards = 4, .threads = 2});
  Rng shard_rng(43);
  PosteriorSummary shard_summary(fixture.init.NumQueues());
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    sharded.Sweep(shard_rng);
    if (sweep >= kBurnIn) {
      shard_summary.Accumulate(sharded.State());
    }
  }

  const auto seq_service = seq_summary.MeanService();
  const auto shard_service = shard_summary.MeanService();
  EXPECT_NEAR(shard_service[1], seq_service[1], 0.02);
  EXPECT_NEAR(shard_service[1], 0.25, 0.05);
}

// --- Driver integration ----------------------------------------------------------------

TEST(ShardedSweep, RejectsShuffleScan) {
  const Fixture fixture = MakeMm1Fixture();
  GibbsOptions gibbs;
  gibbs.shuffle_scan = true;
  GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates, gibbs);
  EXPECT_THROW(sampler.EnableShardedSweeps({}), Error);
}

TEST(ShardedSweep, ParallelChainsComposeWithShardedSweeps) {
  // K chains × S shards: pooled output must stay bit-identical across every combination
  // of chain threads and shard threads.
  const Fixture fixture = MakeMm1Fixture();
  ParallelChainsOptions options;
  options.chains = 3;
  options.sweeps = 30;
  options.burn_in = 10;
  options.sharded_sweeps = true;
  options.sharded.shards = 2;

  options.threads = 1;
  options.sharded.threads = 1;
  const ParallelChainsResult serial =
      RunParallelChains(fixture.truth, fixture.obs, fixture.rates, 7, options);
  options.threads = 3;
  options.sharded.threads = 2;
  const ParallelChainsResult parallel =
      RunParallelChains(fixture.truth, fixture.obs, fixture.rates, 7, options);

  ASSERT_EQ(serial.pooled.NumSamples(), parallel.pooled.NumSamples());
  const auto mean_s = serial.pooled.MeanService();
  const auto mean_p = parallel.pooled.MeanService();
  for (std::size_t q = 0; q < mean_s.size(); ++q) {
    EXPECT_EQ(mean_s[q], mean_p[q]) << "q=" << q;
  }
  EXPECT_EQ(serial.max_r_hat, parallel.max_r_hat);
}

TEST(ShardedSweep, StemShardedSweepsAreDeterministic) {
  const Fixture fixture = MakeMm1Fixture(120, 0.3);
  StemOptions options;
  options.iterations = 40;
  options.burn_in = 10;
  options.wait_sweeps = 10;
  options.sharded_sweeps = true;
  options.sharded.shards = 2;

  options.sharded.threads = 1;
  Rng rng_a(3);
  const StemResult a = StemEstimator(options).Run(fixture.truth, fixture.obs, {}, rng_a);
  options.sharded.threads = 2;
  Rng rng_b(3);
  const StemResult b = StemEstimator(options).Run(fixture.truth, fixture.obs, {}, rng_b);

  ASSERT_EQ(a.rates.size(), b.rates.size());
  for (std::size_t q = 0; q < a.rates.size(); ++q) {
    EXPECT_EQ(a.rates[q], b.rates[q]) << "q=" << q;
  }
  // And the estimate is sane: true rates are lambda = 2, mu = 4.
  EXPECT_NEAR(a.rates[1], 4.0, 1.0);
}

}  // namespace
}  // namespace qnet
