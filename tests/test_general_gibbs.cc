// General-service Gibbs sampler: must agree with the M/M/1 sampler when services are
// exponential, and must preserve feasibility for non-exponential services.

#include "qnet/infer/general_gibbs.h"

#include <cmath>

#include <gtest/gtest.h>

#include "qnet/dist/exponential.h"
#include "qnet/dist/lognormal.h"
#include "qnet/infer/gibbs.h"
#include "qnet/infer/initializer.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/math.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

TEST(GeneralGibbs, PreservesFeasibilityWithExponentialServices) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
  Rng rng(3);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 120), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.2;
  const Observation obs = scheme.Apply(truth, rng);
  GeneralGibbsSampler sampler(InitializeFeasible(truth, obs, net.ExponentialRates(), rng),
                              obs, net);
  for (int sweep = 0; sweep < 15; ++sweep) {
    sampler.Sweep(rng);
  }
  std::string why;
  EXPECT_TRUE(sampler.State().IsFeasible(1e-6, &why)) << why;
  for (EventId e = 0; static_cast<std::size_t>(e) < truth.NumEvents(); ++e) {
    if (obs.ArrivalObserved(e)) {
      EXPECT_DOUBLE_EQ(sampler.State().Arrival(e), truth.Arrival(e));
    }
  }
}

TEST(GeneralGibbs, AgreesWithExponentialSamplerOnTractableCase) {
  // Same 2-task analytic scenario as test_gibbs: E[a] = 2, E[d] = 2 + e^{-1} + 0.5.
  EventLog log(2);
  log.AddTask(1.0);
  log.AddTask(1.5);
  log.AddVisit(0, 0, 1, 1.0, 2.0);
  log.AddVisit(1, 0, 1, 1.5, 2.5);
  log.BuildQueueLinks();
  Observation obs;
  obs.arrival_observed.assign(log.NumEvents(), 0);
  obs.departure_observed.assign(log.NumEvents(), 0);
  const auto& chain0 = log.TaskEvents(0);
  const auto& chain1 = log.TaskEvents(1);
  obs.arrival_observed[static_cast<std::size_t>(chain0[0])] = 1;
  obs.arrival_observed[static_cast<std::size_t>(chain1[0])] = 1;
  obs.arrival_observed[static_cast<std::size_t>(chain0[1])] = 1;
  obs.departure_observed[static_cast<std::size_t>(chain0[0])] = 1;
  obs.departure_observed[static_cast<std::size_t>(chain0[1])] = 1;
  obs.Validate(log);

  QueueingNetwork net(std::make_unique<Exponential>(1.0));
  net.AddQueue("q", std::make_unique<Exponential>(2.0));

  GeneralGibbsSampler sampler(log, obs, net);
  Rng rng(7);
  RunningStat a_stat;
  RunningStat d_stat;
  for (int i = 0; i < 60000; ++i) {
    sampler.Sweep(rng);
    if (i >= 500) {
      a_stat.Add(sampler.State().Arrival(chain1[1]));
      d_stat.Add(sampler.State().Departure(chain1[1]));
    }
  }
  EXPECT_NEAR(a_stat.Mean(), 2.0, 0.05);
  EXPECT_NEAR(d_stat.Mean(), 2.0 + std::exp(-1.0) + 0.5, 0.05);
}

TEST(GeneralGibbs, LogNormalServicesStayFeasibleAndMix) {
  // Simulate a network whose real queue has log-normal service, then infer with the matched
  // model; feasibility and basic mixing are the contract here.
  QueueingNetwork net(std::make_unique<Exponential>(1.0));
  net.AddQueue("ln", std::make_unique<LogNormal>(LogNormal::FromMeanScv(0.3, 2.0)));
  Fsm& fsm = net.MutableFsm();
  const int s = fsm.AddState("s");
  fsm.SetDeterministicEmission(s, 1);
  fsm.SetInitialState(s);
  fsm.SetTransition(s, Fsm::kFinalState, 1.0);
  net.Validate();

  Rng rng(11);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(1.0, 200), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.3;
  const Observation obs = scheme.Apply(truth, rng);
  // Greedy initializer needs per-queue rate *scales*: use 1/mean as the effective rate.
  const std::vector<double> pseudo_rates = {1.0, 1.0 / 0.3};
  GeneralGibbsSampler sampler(InitializeFeasible(truth, obs, pseudo_rates, rng), obs, net);
  RunningStat service_mean;
  for (int sweep = 0; sweep < 60; ++sweep) {
    sampler.Sweep(rng);
    if (sweep >= 20) {
      service_mean.Add(sampler.State().PerQueueMeanService()[1]);
    }
  }
  std::string why;
  EXPECT_TRUE(sampler.State().IsFeasible(1e-6, &why)) << why;
  // Imputed mean service should be in the right ballpark of the generating mean 0.3.
  EXPECT_NEAR(service_mean.Mean(), 0.3, 0.15);
  // And the chain actually moves (nonzero variance across sweeps).
  EXPECT_GT(service_mean.Variance(), 0.0);
}

TEST(GeneralGibbs, SetServiceSwapsDistribution) {
  const QueueingNetwork net = MakeSingleQueueNetwork(1.0, 4.0);
  Rng rng(13);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(1.0, 30), rng);
  const Observation obs = Observation::FullyObserved(truth);
  GeneralGibbsSampler sampler(truth, obs, net);
  const double before = sampler.LogJoint();
  sampler.SetService(1, std::make_unique<Exponential>(0.5));
  const double after = sampler.LogJoint();
  EXPECT_NE(before, after);
}

}  // namespace
}  // namespace qnet
