// General-service StEM: recovery of non-exponential service distributions from incomplete
// traces — the full pipeline of the paper's "more general service distributions" extension.

#include "qnet/infer/general_stem.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "qnet/dist/exponential.h"
#include "qnet/dist/gamma.h"
#include "qnet/dist/lognormal.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/check.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

QueueingNetwork MakeSingleGeneralNet(std::unique_ptr<ServiceDistribution> service) {
  QueueingNetwork net(std::make_unique<Exponential>(1.0));
  net.AddQueue("svc", std::move(service));
  Fsm& fsm = net.MutableFsm();
  const int s = fsm.AddState("s");
  fsm.SetDeterministicEmission(s, 1);
  fsm.SetInitialState(s);
  fsm.SetTransition(s, Fsm::kFinalState, 1.0);
  net.Validate();
  return net;
}

TEST(GeneralStem, RecoversGammaServiceMean) {
  // Gamma(3, 10): mean 0.3, SCV 1/3 — clearly non-exponential.
  const QueueingNetwork truth_net =
      MakeSingleGeneralNet(std::make_unique<GammaDist>(3.0, 10.0));
  Rng rng(3);
  const EventLog truth = SimulateWorkload(truth_net, PoissonArrivals(1.0, 400), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.4;
  const Observation obs = scheme.Apply(truth, rng);

  // Start from a deliberately wrong exponential-mean guess.
  const QueueingNetwork start =
      MakeSingleGeneralNet(std::make_unique<GammaDist>(1.0, 1.0));
  GeneralStemOptions options;
  options.iterations = 80;
  options.burn_in = 30;
  options.default_family = ServiceFamily::kGamma;
  options.wait_sweeps = 0;
  const GeneralStemResult result =
      GeneralStemEstimator(options).Run(truth, obs, start, rng);
  EXPECT_NEAR(result.mean_service[1], 0.3, 0.1);
  EXPECT_EQ(result.chosen_family[1], ServiceFamily::kGamma);
  const auto* fitted = dynamic_cast<const GammaDist*>(&result.network.Service(1));
  ASSERT_NE(fitted, nullptr);
  EXPECT_GT(fitted->shape(), 1.2);  // clearly not exponential (shape 1)
}

TEST(GeneralStem, FullyObservedMatchesDirectFit) {
  const QueueingNetwork truth_net =
      MakeSingleGeneralNet(std::make_unique<LogNormal>(-1.5, 0.6));
  Rng rng(5);
  const EventLog truth = SimulateWorkload(truth_net, PoissonArrivals(1.0, 300), rng);
  const Observation obs = Observation::FullyObserved(truth);
  GeneralStemOptions options;
  options.iterations = 10;
  options.burn_in = 2;
  options.default_family = ServiceFamily::kLogNormal;
  options.wait_sweeps = 0;
  const GeneralStemResult result =
      GeneralStemEstimator(options).Run(truth, obs, truth_net, rng);
  // With everything observed, the imputed services equal the true values, so the fit
  // matches the realized mean service exactly (up to the floor).
  EXPECT_NEAR(result.mean_service[1], truth.PerQueueMeanService()[1], 0.02);
}

TEST(GeneralStem, BicSelectionIdentifiesFamily) {
  const QueueingNetwork truth_net =
      MakeSingleGeneralNet(std::make_unique<LogNormal>(-2.0, 1.2));  // heavy-tailed
  Rng rng(7);
  const EventLog truth = SimulateWorkload(truth_net, PoissonArrivals(1.0, 500), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.6;
  const Observation obs = scheme.Apply(truth, rng);
  GeneralStemOptions options;
  options.iterations = 60;
  options.burn_in = 20;
  options.default_family = ServiceFamily::kLogNormal;
  options.select_family_by_bic = true;
  options.wait_sweeps = 0;
  const GeneralStemResult result =
      GeneralStemEstimator(options).Run(truth, obs, truth_net, rng);
  EXPECT_EQ(result.chosen_family[1], ServiceFamily::kLogNormal);
  EXPECT_NE(result.fitted_description[1].find("lognormal"), std::string::npos);
}

TEST(GeneralStem, GuardsBadOptions) {
  const QueueingNetwork net = MakeSingleGeneralNet(std::make_unique<GammaDist>(2.0, 4.0));
  Rng rng(9);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(1.0, 30), rng);
  const Observation obs = Observation::FullyObserved(truth);
  GeneralStemOptions options;
  options.iterations = 5;
  options.burn_in = 5;
  EXPECT_THROW(GeneralStemEstimator(options).Run(truth, obs, net, rng), Error);
  options.burn_in = 1;
  options.families = {ServiceFamily::kGamma};  // wrong length (needs one per queue)
  EXPECT_THROW(GeneralStemEstimator(options).Run(truth, obs, net, rng), Error);
}

}  // namespace
}  // namespace qnet
