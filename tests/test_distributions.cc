// Property tests for all service distributions: density normalization, CDF/pdf consistency,
// sample/analytic moment agreement, and KS identity between Sample() and Cdf(). The suite is
// parameterized over every concrete family so each property runs everywhere.

#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "qnet/dist/deterministic.h"
#include "qnet/dist/distribution.h"
#include "qnet/dist/exponential.h"
#include "qnet/dist/gamma.h"
#include "qnet/dist/hyperexp.h"
#include "qnet/dist/lognormal.h"
#include "qnet/dist/pareto.h"
#include "qnet/dist/truncated_exponential.h"
#include "qnet/dist/uniform_dist.h"
#include "qnet/dist/weibull.h"
#include "qnet/support/check.h"
#include "qnet/support/logspace.h"
#include "qnet/support/math.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

struct DistCase {
  std::string name;
  std::function<std::unique_ptr<ServiceDistribution>()> make;
  bool continuous = true;  // Deterministic is excluded from density-based checks.
};

std::vector<DistCase> AllCases() {
  return {
      {"exp_fast", [] { return std::make_unique<Exponential>(5.0); }},
      {"exp_slow", [] { return std::make_unique<Exponential>(0.25); }},
      {"trexp_pos", [] { return std::make_unique<TruncatedExponential>(2.0, 0.5, 3.0); }},
      {"trexp_neg", [] { return std::make_unique<TruncatedExponential>(-1.5, 0.0, 2.0); }},
      {"trexp_inf", [] { return std::make_unique<TruncatedExponential>(3.0, 1.0, kPosInf); }},
      {"gamma_under", [] { return std::make_unique<GammaDist>(0.7, 2.0); }},
      {"gamma_over", [] { return std::make_unique<GammaDist>(4.5, 3.0); }},
      {"lognormal", [] { return std::make_unique<LogNormal>(-1.0, 0.8); }},
      {"uniform", [] { return std::make_unique<UniformDist>(0.2, 1.7); }},
      {"hyperexp",
       [] {
         return std::make_unique<HyperExponential>(std::vector<double>{0.3, 0.7},
                                                   std::vector<double>{1.0, 10.0});
       }},
      {"weibull_decr", [] { return std::make_unique<Weibull>(0.8, 0.5); }},
      {"weibull_incr", [] { return std::make_unique<Weibull>(2.5, 1.2); }},
      {"pareto", [] { return std::make_unique<Pareto>(4.0, 0.9); }},
      {"deterministic", [] { return std::make_unique<Deterministic>(0.4); }, false},
  };
}

class DistributionTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionTest, SampleMomentsMatchAnalytic) {
  const auto dist = GetParam().make();
  Rng rng(1234);
  RunningStat rs;
  const int n = 150000;
  for (int i = 0; i < n; ++i) {
    rs.Add(dist->Sample(rng));
  }
  const double mean = dist->Mean();
  const double sd = std::sqrt(dist->Variance());
  EXPECT_NEAR(rs.Mean(), mean, 5.0 * sd / std::sqrt(static_cast<double>(n)) + 1e-9)
      << dist->Describe();
  if (GetParam().continuous) {
    EXPECT_NEAR(rs.Variance(), dist->Variance(), 0.15 * dist->Variance() + 1e-6)
        << dist->Describe();
  }
}

TEST_P(DistributionTest, DensityIntegratesToOne) {
  if (!GetParam().continuous) {
    GTEST_SKIP() << "degenerate distribution";
  }
  const auto dist = GetParam().make();
  // Integrate exp(LogPdf) over a wide quantile-ish range by trapezoid.
  const double hi = dist->Mean() + 40.0 * std::sqrt(dist->Variance()) + 10.0;
  const int steps = 400000;
  const double h = hi / steps;
  double integral = 0.0;
  for (int i = 0; i <= steps; ++i) {
    const double x = i * h;
    const double w = (i == 0 || i == steps) ? 0.5 : 1.0;
    const double lp = dist->LogPdf(x);
    if (lp > -700.0) {
      integral += w * std::exp(lp);
    }
  }
  integral *= h;
  EXPECT_NEAR(integral, 1.0, 5e-3) << dist->Describe();
}

TEST_P(DistributionTest, CdfMatchesIntegratedPdf) {
  if (!GetParam().continuous) {
    GTEST_SKIP() << "degenerate distribution";
  }
  const auto dist = GetParam().make();
  const double sd = std::sqrt(dist->Variance());
  for (double frac : {0.3, 1.0, 2.0}) {
    const double x = std::max(dist->Mean() + (frac - 1.0) * sd, 1e-3);
    const int steps = 200000;
    const double h = x / steps;
    double integral = 0.0;
    for (int i = 0; i <= steps; ++i) {
      const double t = i * h;
      const double w = (i == 0 || i == steps) ? 0.5 : 1.0;
      const double lp = dist->LogPdf(t);
      if (lp > -700.0) {
        integral += w * std::exp(lp);
      }
    }
    integral *= h;
    EXPECT_NEAR(dist->Cdf(x), integral, 5e-3) << dist->Describe() << " at x=" << x;
  }
}

TEST_P(DistributionTest, KsSampleAgainstCdf) {
  if (!GetParam().continuous) {
    GTEST_SKIP() << "degenerate distribution";
  }
  const auto dist = GetParam().make();
  Rng rng(99);
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) {
    xs.push_back(dist->Sample(rng));
  }
  const double d = KsStatistic(xs, [&](double x) { return dist->Cdf(x); });
  EXPECT_GT(KsPValue(d, xs.size()), 1e-4) << dist->Describe() << " d=" << d;
}

TEST_P(DistributionTest, CloneIsEquivalent) {
  const auto dist = GetParam().make();
  const auto clone = dist->Clone();
  EXPECT_EQ(dist->Describe(), clone->Describe());
  EXPECT_DOUBLE_EQ(dist->Mean(), clone->Mean());
  EXPECT_DOUBLE_EQ(dist->Variance(), clone->Variance());
  for (double x : {0.1, 0.5, 1.0, 2.0}) {
    EXPECT_DOUBLE_EQ(dist->LogPdf(x), clone->LogPdf(x)) << "x=" << x;
    EXPECT_DOUBLE_EQ(dist->Cdf(x), clone->Cdf(x)) << "x=" << x;
  }
}

TEST_P(DistributionTest, CdfIsMonotoneWithCorrectLimits) {
  const auto dist = GetParam().make();
  double prev = -1.0;
  for (double x = 0.0; x <= 20.0; x += 0.25) {
    const double c = dist->Cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(dist->Cdf(-1.0), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, DistributionTest, ::testing::ValuesIn(AllCases()),
                         [](const ::testing::TestParamInfo<DistCase>& param_info) {
                           return param_info.param.name;
                         });

TEST(Exponential, RejectsBadRate) {
  EXPECT_THROW(Exponential(0.0), Error);
  EXPECT_THROW(Exponential(-1.0), Error);
}

TEST(Exponential, Memoryless) {
  const Exponential dist(2.0);
  // P(X > s + t | X > s) == P(X > t).
  const double s = 0.7;
  const double t = 0.4;
  const double lhs = (1.0 - dist.Cdf(s + t)) / (1.0 - dist.Cdf(s));
  EXPECT_NEAR(lhs, 1.0 - dist.Cdf(t), 1e-12);
}

TEST(TruncatedExponential, DegeneratesToUniformAtRateZero) {
  const TruncatedExponential dist(0.0, 1.0, 3.0);
  EXPECT_NEAR(dist.Mean(), 2.0, 1e-12);
  EXPECT_NEAR(dist.Variance(), 4.0 / 12.0, 1e-12);
  EXPECT_NEAR(dist.Cdf(2.0), 0.5, 1e-12);
}

TEST(TruncatedExponential, RejectsInvalidConstruction) {
  EXPECT_THROW(TruncatedExponential(1.0, 2.0, 1.0), Error);
  EXPECT_THROW(TruncatedExponential(-1.0, 0.0, kPosInf), Error);
}

TEST(GammaDist, RegularizedLowerGammaKnownValues) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 1.0, 3.0}) {
    EXPECT_NEAR(RegularizedLowerGamma(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
  // P(a, a) -> 1/2 as a grows.
  EXPECT_NEAR(RegularizedLowerGamma(300.0, 300.0), 0.5, 0.02);
  EXPECT_DOUBLE_EQ(RegularizedLowerGamma(2.0, 0.0), 0.0);
}

TEST(LogNormal, FromMeanScvRoundTrips) {
  const LogNormal dist = LogNormal::FromMeanScv(2.5, 1.8);
  EXPECT_NEAR(dist.Mean(), 2.5, 1e-9);
  EXPECT_NEAR(SquaredCoefficientOfVariation(dist), 1.8, 1e-9);
}

TEST(HyperExponential, ScvExceedsOne) {
  const HyperExponential dist({0.9, 0.1}, {10.0, 0.5});
  EXPECT_GT(SquaredCoefficientOfVariation(dist), 1.0);
}

TEST(HyperExponential, RejectsUnnormalizedWeights) {
  EXPECT_THROW(HyperExponential({0.5, 0.6}, {1.0, 2.0}), Error);
  EXPECT_THROW(HyperExponential({0.5, 0.5}, {1.0, -2.0}), Error);
  EXPECT_THROW(HyperExponential({0.5, 0.5}, {1.0}), Error);
}

TEST(Deterministic, PointMassBehavior) {
  const Deterministic dist(0.4);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(dist.Sample(rng), 0.4);
  EXPECT_DOUBLE_EQ(dist.Mean(), 0.4);
  EXPECT_DOUBLE_EQ(dist.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(dist.Cdf(0.39), 0.0);
  EXPECT_DOUBLE_EQ(dist.Cdf(0.4), 1.0);
  EXPECT_EQ(dist.LogPdf(1.0), kNegInf);
  EXPECT_GT(dist.LogPdf(0.4), 0.0);
}

TEST(ServiceDistribution, ScvIdentities) {
  EXPECT_NEAR(SquaredCoefficientOfVariation(Exponential(3.0)), 1.0, 1e-12);
  EXPECT_NEAR(SquaredCoefficientOfVariation(UniformDist(0.0, 1.0)), 1.0 / 3.0, 1e-12);
  // Weibull with shape 1 is exponential.
  EXPECT_NEAR(SquaredCoefficientOfVariation(Weibull(1.0, 2.0)), 1.0, 1e-9);
  // Pareto SCV = shape/(shape-2) > 1 always.
  EXPECT_GT(SquaredCoefficientOfVariation(Pareto(3.0, 1.0)), 1.0);
}

TEST(Weibull, ShapeOneIsExponential) {
  const Weibull weibull(1.0, 0.5);  // scale 0.5 <=> rate 2
  const Exponential exponential(2.0);
  for (double x : {0.1, 0.5, 1.0, 2.0}) {
    EXPECT_NEAR(weibull.Cdf(x), exponential.Cdf(x), 1e-12) << "x=" << x;
    EXPECT_NEAR(weibull.LogPdf(x), exponential.LogPdf(x), 1e-12) << "x=" << x;
  }
  EXPECT_THROW(Weibull(0.0, 1.0), Error);
}

TEST(Pareto, TailHeavierThanExponential) {
  const Pareto pareto(2.5, 1.5);
  const Exponential exponential(1.0 / pareto.Mean());
  // Same mean, but the Pareto survival dominates far in the tail.
  const double x = 20.0 * pareto.Mean();
  EXPECT_GT(1.0 - pareto.Cdf(x), 10.0 * (1.0 - exponential.Cdf(x)));
  EXPECT_THROW(Pareto(1.5, 1.0), Error);  // needs shape > 2 for finite variance
}

}  // namespace
}  // namespace qnet
