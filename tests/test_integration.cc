// End-to-end integration tests: the paper's full workflow (simulate -> observe a fraction ->
// StEM+Gibbs -> localize) on the Section 5.1 networks, including fault localization via the
// waiting/service decomposition.

#include <cmath>

#include <gtest/gtest.h>

#include "qnet/infer/estimators.h"
#include "qnet/infer/stem.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/fault.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/math.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

TEST(Integration, ThreeTierRecoveryAtQuarterObservation) {
  // Structure {1,2,4} at lambda=10, mu=5 (the paper's overload mix), 25% of tasks observed.
  ThreeTierConfig config;
  config.tier_sizes = {1, 2, 4};
  const QueueingNetwork net = MakeThreeTierNetwork(config);
  Rng rng(3);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(10.0, 1000), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.25;
  const Observation obs = scheme.Apply(truth, rng);

  StemOptions options;
  options.iterations = 120;
  options.burn_in = 40;
  options.wait_sweeps = 40;
  std::vector<double> init_rates(static_cast<std::size_t>(net.NumQueues()), 1.0);
  const StemResult result = StemEstimator(options).Run(truth, obs, init_rates, rng);

  // Service-time recovery: every real queue's mean service is 1/5 = 0.2.
  const auto realized_service = truth.PerQueueMeanService();
  for (int q = 1; q < net.NumQueues(); ++q) {
    EXPECT_NEAR(result.mean_service[static_cast<std::size_t>(q)],
                realized_service[static_cast<std::size_t>(q)], 0.08)
        << net.QueueName(q);
  }
  // Waiting-time decomposition identifies the single-server tier as the bottleneck.
  ASSERT_FALSE(result.mean_wait.empty());
  double max_other_wait = 0.0;
  for (int q = 2; q < net.NumQueues(); ++q) {
    max_other_wait = std::max(max_other_wait, result.mean_wait[static_cast<std::size_t>(q)]);
  }
  EXPECT_GT(result.mean_wait[1], 3.0 * max_other_wait)
      << "overloaded tier-0 server must dominate waiting";
}

TEST(Integration, FaultLocalizationSeparatesLoadFromDegradation) {
  // Two-queue tandem where queue 2 intrinsically degrades (4x slower service) for the whole
  // run: the *service* estimate must implicate queue 2, not just its waiting time. This is
  // the paper's "poor performance due to intrinsic performance vs heavy load" distinction.
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 8.0});
  FaultSchedule faults;
  faults.AddSlowdown(2, 0.0, 1.0e9, 4.0);  // queue 2 effective rate: 2.0
  SimOptions sim_options;
  sim_options.faults = &faults;
  Rng rng(5);
  const EventLog truth =
      Simulate(net, PoissonArrivals(2.0, 800).Generate(rng), rng, sim_options);

  TaskSamplingScheme scheme;
  scheme.fraction = 0.2;
  const Observation obs = scheme.Apply(truth, rng);
  StemOptions options;
  options.iterations = 120;
  options.burn_in = 40;
  options.wait_sweeps = 0;
  const StemResult result =
      StemEstimator(options).Run(truth, obs, {1.0, 1.0, 1.0}, rng);

  // Queue 1 healthy: mean service ~0.25. Queue 2 degraded: ~0.5 despite nominal 0.125.
  EXPECT_NEAR(result.mean_service[1], 0.25, 0.08);
  EXPECT_GT(result.mean_service[2], 0.3);
  EXPECT_NEAR(result.mean_service[2], 0.5, 0.15);
}

TEST(Integration, SpikeDiagnosisViaWaitingTimes) {
  // The paper's motivating question: "five minutes ago a brief spike occurred — which part
  // of the system was the bottleneck?" A workload spike inflates *waiting* at the slowest
  // queue while *service* estimates stay at their intrinsic values.
  const QueueingNetwork net = MakeTandemNetwork(1.0, {3.0, 12.0});
  Rng rng(7);
  const PiecewiseConstantArrivals workload({0.0, 60.0, 90.0, 150.0}, {1.0, 8.0, 1.0});
  const EventLog truth = Simulate(net, workload.Generate(rng), rng);

  TaskSamplingScheme scheme;
  scheme.fraction = 0.3;
  const Observation obs = scheme.Apply(truth, rng);
  StemOptions options;
  options.iterations = 100;
  options.burn_in = 40;
  options.wait_sweeps = 40;
  const StemResult result =
      StemEstimator(options).Run(truth, obs, {1.0, 1.0, 1.0}, rng);

  // Intrinsic service recovered despite the spike.
  EXPECT_NEAR(result.mean_service[1], 1.0 / 3.0, 0.12);
  EXPECT_NEAR(result.mean_service[2], 1.0 / 12.0, 0.05);
  // The slow queue (1) absorbed the spike: its waiting dominates.
  ASSERT_FALSE(result.mean_wait.empty());
  EXPECT_GT(result.mean_wait[1], 2.0 * result.mean_wait[2]);
}

TEST(Integration, EstimatesImproveWithObservationFraction) {
  // Error at 50% observed should not exceed error at 2% observed (directional sanity of the
  // Figure 4 trend), measured on the same ground truth.
  const QueueingNetwork net = MakeTandemNetwork(2.0, {5.0, 4.0});
  Rng rng(9);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 800), rng);
  const auto realized = truth.PerQueueMeanService();

  const auto run_at = [&](double fraction) {
    TaskSamplingScheme scheme;
    scheme.fraction = fraction;
    Rng local_rng(1000 + static_cast<std::uint64_t>(fraction * 1000));
    const Observation obs = scheme.Apply(truth, local_rng);
    StemOptions options;
    options.iterations = 100;
    options.burn_in = 40;
    options.wait_sweeps = 0;
    const StemResult result =
        StemEstimator(options).Run(truth, obs, {1.0, 1.0, 1.0}, local_rng);
    double err = 0.0;
    for (std::size_t q = 1; q < realized.size(); ++q) {
      err += std::abs(result.mean_service[q] - realized[q]);
    }
    return err;
  };

  const double err_low = run_at(0.02);
  const double err_high = run_at(0.5);
  EXPECT_LT(err_high, err_low + 0.05);  // allow noise, but the trend must hold
  EXPECT_LT(err_high, 0.05);
}

}  // namespace
}  // namespace qnet
