// Counting replacement of the global allocation operators, shared by the allocation-free
// tests and the allocation-count benchmarks. Include from exactly ONE translation unit per
// binary: it *defines* global operator new/delete, so a second including TU in the same
// link violates the one-definition rule.

#ifndef QNET_TESTS_SUPPORT_COUNTING_ALLOCATOR_H_
#define QNET_TESTS_SUPPORT_COUNTING_ALLOCATOR_H_

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace qnet_testing {

inline std::atomic<std::size_t> g_allocation_count{0};

// Total global operator-new calls in this process so far; diff across a region to count
// its allocations.
inline std::size_t AllocationCount() {
  return g_allocation_count.load(std::memory_order_relaxed);
}

}  // namespace qnet_testing

void* operator new(std::size_t size) {
  qnet_testing::g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// Over-aligned variants must be replaced too: the default align_val_t operators do NOT
// forward to the replaced operator new(size_t), so an alignas(>16) hot-path type would
// otherwise allocate without bumping the counter.
void* operator new(std::size_t size, std::align_val_t align) {
  qnet_testing::g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               (size + static_cast<std::size_t>(align) - 1) &
                                   ~(static_cast<std::size_t>(align) - 1));
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

#endif  // QNET_TESTS_SUPPORT_COUNTING_ALLOCATOR_H_
