// Test helper: a TraceStream replaying an explicit record list (late-record,
// time-shifted, and hand-built stream scenarios). Shared by the stream and shard suites.

#ifndef QNET_TESTS_SUPPORT_VECTOR_STREAM_H_
#define QNET_TESTS_SUPPORT_VECTOR_STREAM_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "qnet/stream/task_record.h"

namespace qnet_testing {

class VectorStream : public qnet::TraceStream {
 public:
  VectorStream(std::vector<qnet::TaskRecord> records, int num_queues)
      : records_(std::move(records)), num_queues_(num_queues) {}

  bool Next(qnet::TaskRecord& out) override {
    if (at_ >= records_.size()) {
      return false;
    }
    out = records_[at_++];
    return true;
  }
  int NumQueues() const override { return num_queues_; }

 private:
  std::vector<qnet::TaskRecord> records_;
  std::size_t at_ = 0;
  int num_queues_;
};

}  // namespace qnet_testing

#endif  // QNET_TESTS_SUPPORT_VECTOR_STREAM_H_
