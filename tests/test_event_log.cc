// Tests for the event-graph data structure: link construction, derived quantities, the
// feasibility checker, and the joint density of eq. (1).

#include "qnet/model/event.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "qnet/dist/exponential.h"
#include "qnet/model/builders.h"
#include "qnet/support/check.h"
#include "qnet/support/logspace.h"

namespace qnet {
namespace {

// Hand-built scenario on one queue (id 1), two tasks:
//   task 0: enters at 1.0, arrives q1 at 1.0, departs 3.0  (service 2.0, wait 0)
//   task 1: enters at 2.0, arrives q1 at 2.0, departs 4.0  (service 1.0, wait 1.0 — FIFO)
EventLog MakeTwoTaskLog() {
  EventLog log(2);
  log.AddTask(1.0);
  log.AddTask(2.0);
  log.AddVisit(0, 0, 1, 1.0, 3.0);
  log.AddVisit(1, 0, 1, 2.0, 4.0);
  log.BuildQueueLinks();
  return log;
}

TEST(EventLog, ShapeAndLinks) {
  const EventLog log = MakeTwoTaskLog();
  EXPECT_EQ(log.NumTasks(), 2);
  EXPECT_EQ(log.NumEvents(), 4u);  // 2 initial + 2 visits
  EXPECT_EQ(log.NumQueues(), 2);

  const auto& t0 = log.TaskEvents(0);
  const auto& t1 = log.TaskEvents(1);
  ASSERT_EQ(t0.size(), 2u);
  ASSERT_EQ(t1.size(), 2u);
  EXPECT_TRUE(log.At(t0[0]).initial);
  EXPECT_EQ(log.At(t0[1]).pi, t0[0]);
  EXPECT_EQ(log.At(t0[0]).tau, t0[1]);

  // Queue 1 arrival order: task0's visit then task1's visit.
  const auto& order = log.QueueOrder(1);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], t0[1]);
  EXPECT_EQ(order[1], t1[1]);
  EXPECT_EQ(log.At(order[1]).rho, order[0]);
  EXPECT_EQ(log.At(order[0]).nu, order[1]);
  EXPECT_EQ(log.At(order[0]).rho, kNoEvent);
  EXPECT_EQ(log.At(order[1]).nu, kNoEvent);

  // Queue 0 (initial events) ordered by task.
  const auto& q0 = log.QueueOrder(0);
  ASSERT_EQ(q0.size(), 2u);
  EXPECT_EQ(q0[0], t0[0]);
  EXPECT_EQ(q0[1], t1[0]);
}

TEST(EventLog, DerivedTimesMatchHandComputation) {
  const EventLog log = MakeTwoTaskLog();
  const EventId e0 = log.TaskEvents(0)[1];
  const EventId e1 = log.TaskEvents(1)[1];
  EXPECT_DOUBLE_EQ(log.BeginService(e0), 1.0);
  EXPECT_DOUBLE_EQ(log.ServiceTime(e0), 2.0);
  EXPECT_DOUBLE_EQ(log.WaitTime(e0), 0.0);
  EXPECT_DOUBLE_EQ(log.ResponseTime(e0), 2.0);
  // Task 1 queues behind task 0: service starts at 3.0.
  EXPECT_DOUBLE_EQ(log.BeginService(e1), 3.0);
  EXPECT_DOUBLE_EQ(log.ServiceTime(e1), 1.0);
  EXPECT_DOUBLE_EQ(log.WaitTime(e1), 1.0);

  // Initial events: interarrival "services" are the entry gaps.
  const EventId i0 = log.TaskEvents(0)[0];
  const EventId i1 = log.TaskEvents(1)[0];
  EXPECT_DOUBLE_EQ(log.ServiceTime(i0), 1.0);  // first entry at 1.0
  EXPECT_DOUBLE_EQ(log.ServiceTime(i1), 1.0);  // gap 2.0 - 1.0
  EXPECT_DOUBLE_EQ(log.TaskEntryTime(1), 2.0);
  EXPECT_DOUBLE_EQ(log.TaskExitTime(1), 4.0);
}

TEST(EventLog, PerQueueSummaries) {
  const EventLog log = MakeTwoTaskLog();
  const auto mean_service = log.PerQueueMeanService();
  const auto mean_wait = log.PerQueueMeanWait();
  const auto counts = log.PerQueueCount();
  const auto sums = log.PerQueueServiceSum();
  EXPECT_DOUBLE_EQ(mean_service[1], 1.5);
  EXPECT_DOUBLE_EQ(mean_wait[1], 0.5);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_DOUBLE_EQ(sums[1], 3.0);
  EXPECT_DOUBLE_EQ(sums[0], 2.0);
}

TEST(EventLog, FeasibilityDetectsViolations) {
  EventLog log = MakeTwoTaskLog();
  EXPECT_TRUE(log.IsFeasible());

  // Negative service time: departure before begin-service.
  EventLog bad_service = log;
  bad_service.SetDeparture(log.TaskEvents(1)[1], 2.5);  // begins at 3.0
  std::string why;
  EXPECT_FALSE(bad_service.IsFeasible(1e-9, &why));
  EXPECT_NE(why.find("service"), std::string::npos);

  // Task continuity: arrival != pi departure.
  EventLog bad_continuity = log;
  bad_continuity.SetArrival(log.TaskEvents(0)[1], 1.5);
  EXPECT_FALSE(bad_continuity.IsFeasible(1e-9, &why));
  EXPECT_NE(why.find("continuity"), std::string::npos);

  // Arrival-order violation within the queue.
  EventLog bad_order = log;
  bad_order.SetArrival(log.TaskEvents(1)[1], 0.5);
  bad_order.SetDeparture(log.TaskEvents(1)[0], 0.5);
  EXPECT_FALSE(bad_order.IsFeasible(1e-9, &why));

  // FIFO departure-order violation (surfaces as a negative service time at the successor,
  // since d_e >= d_rho(e) is implied by s_e >= 0).
  EventLog bad_fifo = log;
  bad_fifo.SetDeparture(log.TaskEvents(0)[1], 4.5);  // now departs after task 1 (4.0)
  EXPECT_FALSE(bad_fifo.IsFeasible(1e-9, &why));
}

TEST(EventLog, LogJointTimesMatchesHandComputation) {
  const EventLog log = MakeTwoTaskLog();
  QueueingNetwork net(std::make_unique<Exponential>(2.0));   // lambda = 2
  net.AddQueue("q", std::make_unique<Exponential>(0.5));     // mu = 0.5
  // Services: q0: {1.0, 1.0}; q1: {2.0, 1.0}.
  const double expected = (std::log(2.0) - 2.0 * 1.0) * 2 +
                          (std::log(0.5) - 0.5 * 2.0) + (std::log(0.5) - 0.5 * 1.0);
  EXPECT_NEAR(log.LogJointTimes(net), expected, 1e-12);
}

TEST(EventLog, ConstructionGuards) {
  EventLog log(2);
  log.AddTask(1.0);
  EXPECT_THROW(log.AddTask(0.5), Error);            // entry times must be ordered
  EXPECT_THROW(log.AddVisit(0, 0, 0, 1.0, 2.0), Error);  // queue 0 reserved
  EXPECT_THROW(log.AddVisit(0, 0, 1, 1.5, 2.0), Error);  // arrival != entry time
  EXPECT_THROW(log.AddVisit(0, 0, 1, 1.0, 0.5), Error);  // departure < arrival
  log.AddVisit(0, 0, 1, 1.0, 2.0);
  log.BuildQueueLinks();
  EXPECT_THROW(log.BuildQueueLinks(), Error);       // links built twice
  EXPECT_THROW(log.AddTask(5.0), Error);            // frozen after links
}

TEST(EventLog, TaskRouteExcludesInitialEvent) {
  const EventLog log = MakeTwoTaskLog();
  const auto route = log.TaskRoute(0);
  ASSERT_EQ(route.size(), 1u);
  EXPECT_EQ(route[0].state, 0);
  EXPECT_EQ(route[0].queue, 1);
}

TEST(EventLog, RevisitsLinkWithinTask) {
  // One task visits queue 1 twice in a row — the feedback-network shape.
  EventLog log(2);
  log.AddTask(1.0);
  log.AddVisit(0, 0, 1, 1.0, 2.0);
  log.AddVisit(0, 0, 1, 2.0, 3.5);
  log.BuildQueueLinks();
  EXPECT_TRUE(log.IsFeasible());
  const auto& chain = log.TaskEvents(0);
  ASSERT_EQ(chain.size(), 3u);
  // Second visit's within-queue predecessor is the first visit (same task).
  EXPECT_EQ(log.At(chain[2]).rho, chain[1]);
  EXPECT_EQ(log.At(chain[2]).pi, chain[1]);
  EXPECT_DOUBLE_EQ(log.ServiceTime(chain[2]), 1.5);
}

TEST(EventLog, CopyIsIndependent) {
  const EventLog log = MakeTwoTaskLog();
  EventLog copy = log;
  copy.SetDeparture(copy.TaskEvents(0)[1], 3.3);
  EXPECT_DOUBLE_EQ(log.Departure(log.TaskEvents(0)[1]), 3.0);
  EXPECT_DOUBLE_EQ(copy.Departure(copy.TaskEvents(0)[1]), 3.3);
}

}  // namespace
}  // namespace qnet
