// Counting-allocator proof that the Gibbs hot path is allocation-free: every global
// operator new in this binary bumps a counter, and the tests assert the counter does not
// move across gather->build->sample cycles and across whole sweeps. This pins the
// perf-critical property (PiecewiseExpDensity inline storage, stack cut arrays, empty-span
// geometry gathers, FunctionRef slice callbacks) so a regression that reintroduces a heap
// allocation per move fails CI instead of just slowing the benchmarks.

#include <gtest/gtest.h>

#include "support/counting_allocator.h"

#include "qnet/detect/change_monitor.h"
#include "qnet/infer/conditional.h"
#include "qnet/infer/general_gibbs.h"
#include "qnet/infer/gibbs.h"
#include "qnet/infer/initializer.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/sim_scratch.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/rng.h"
#include "qnet/telemetry/metrics.h"
#include "qnet/telemetry/timeline.h"

namespace qnet {
namespace {

using qnet_testing::AllocationCount;

struct Fixture {
  EventLog truth;
  Observation obs;
  std::vector<double> rates;
  EventLog init;
};

Fixture MakeFixture() {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
  Rng rng(21);
  EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 120), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.2;
  Observation obs = scheme.Apply(truth, rng);
  std::vector<double> rates = net.ExponentialRates();
  EventLog init = InitializeFeasible(truth, obs, rates, rng);
  return Fixture{std::move(truth), std::move(obs), std::move(rates), std::move(init)};
}

EventId FirstLatentArrival(const Fixture& fixture) {
  for (EventId e = 0; static_cast<std::size_t>(e) < fixture.init.NumEvents(); ++e) {
    if (!fixture.init.At(e).initial && !fixture.obs.ArrivalObserved(e)) {
      return e;
    }
  }
  return kNoEvent;
}

TEST(AllocFree, SampleArrivalFastPathDoesNotAllocate) {
  const Fixture fixture = MakeFixture();
  const EventId target = FirstLatentArrival(fixture);
  ASSERT_NE(target, kNoEvent);
  Rng rng(7);
  // Warm-up exercises every branch object once before counting.
  {
    const ArrivalMove move = GatherArrivalMove(fixture.init, target, fixture.rates);
    (void)SampleArrival(move, rng);
  }
  const std::size_t before = AllocationCount();
  double sink = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const ArrivalMove move = GatherArrivalMove(fixture.init, target, fixture.rates);
    sink += SampleArrival(move, rng);
  }
  EXPECT_EQ(AllocationCount(), before) << "sink=" << sink;
}

TEST(AllocFree, GeometryGathersDoNotAllocate) {
  const Fixture fixture = MakeFixture();
  const EventId target = FirstLatentArrival(fixture);
  ASSERT_NE(target, kNoEvent);
  const std::size_t before = AllocationCount();
  double sink = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const ArrivalMove geom = GatherArrivalGeometry(fixture.init, target);
    sink += geom.upper - geom.lower;
  }
  EXPECT_EQ(AllocationCount(), before) << "sink=" << sink;
}

TEST(AllocFree, BuildArrivalDensityDoesNotAllocate) {
  const Fixture fixture = MakeFixture();
  const EventId target = FirstLatentArrival(fixture);
  ASSERT_NE(target, kNoEvent);
  const ArrivalMove move = GatherArrivalMove(fixture.init, target, fixture.rates);
  ASSERT_LT(move.lower, move.upper);
  const std::size_t before = AllocationCount();
  double sink = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const PiecewiseExpDensity density = BuildArrivalDensity(move);
    sink += density.NumSegments() > 0 ? density.SupportLo() : 0.0;
  }
  EXPECT_EQ(AllocationCount(), before) << "sink=" << sink;
}

TEST(AllocFree, WholeGibbsSweepDoesNotAllocate) {
  const Fixture fixture = MakeFixture();
  GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates);
  ASSERT_GT(sampler.NumLatentArrivals(), 0u);
  Rng rng(9);
  sampler.Sweep(rng);  // warm-up
  const std::size_t before = AllocationCount();
  for (int sweep = 0; sweep < 20; ++sweep) {
    sampler.Sweep(rng);
  }
  EXPECT_EQ(AllocationCount(), before);
}

TEST(AllocFree, ShardedSweepDoesNotAllocate) {
  // The colored sweep path must preserve the hot-path contract: the schedule and all
  // buffers are frozen at EnableShardedSweeps, per-bucket Rng streams live on the stack,
  // and with threads == 1 Run is a plain sequential loop — so a warmed-up sharded sweep
  // performs zero allocations.
  const Fixture fixture = MakeFixture();
  GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates);
  ShardedSweepOptions options;
  options.shards = 4;
  options.threads = 1;
  sampler.EnableShardedSweeps(options);
  ASSERT_GT(sampler.Scheduler()->NumColors(), 0u);
  Rng rng(9);
  sampler.Sweep(rng);  // warm-up
  const std::size_t before = AllocationCount();
  for (int sweep = 0; sweep < 20; ++sweep) {
    sampler.Sweep(rng);
  }
  EXPECT_EQ(AllocationCount(), before);
}

TEST(AllocFree, ShardedSweepWithWorkersDoesNotAllocate) {
  // Workers are persistent (launched once at EnableShardedSweeps, parked on a condition
  // variable between sweeps), so the zero-allocation contract holds for threads > 1 too:
  // a sweep is a notify + barrier-phased bucket execution, nothing more.
  const Fixture fixture = MakeFixture();
  GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates);
  ShardedSweepOptions options;
  options.shards = 4;
  options.threads = 2;
  sampler.EnableShardedSweeps(options);
  Rng rng(9);
  sampler.Sweep(rng);  // warm-up
  const std::size_t before = AllocationCount();
  for (int sweep = 0; sweep < 20; ++sweep) {
    sampler.Sweep(rng);
  }
  EXPECT_EQ(AllocationCount(), before);
}

TEST(AllocFree, BatchedSweepAtFullWidthDoesNotAllocate) {
  // The batched SoA kernel's whole per-tile machinery — BatchRng lane states, the
  // PiecewiseExpBatch arrays, the pick/inv/sampled rows — lives on the stack, and the
  // internal single-shard schedule is built on the first sweep; warmed up, a batched
  // sweep at the widest tile performs zero allocations.
  const Fixture fixture = MakeFixture();
  GibbsOptions options;
  options.batch_width = kMaxBatchWidth;
  GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates, options);
  ASSERT_GT(sampler.NumLatentArrivals(), 0u);
  Rng rng(9);
  sampler.Sweep(rng);  // warm-up (builds the internal batch schedule)
  const std::size_t before = AllocationCount();
  for (int sweep = 0; sweep < 20; ++sweep) {
    sampler.Sweep(rng);
  }
  EXPECT_EQ(AllocationCount(), before);
}

TEST(AllocFree, BatchedShardedSweepWithWorkersDoesNotAllocate) {
  // Batched execution over the 4-shard schedule with parked worker threads: the
  // zero-allocation contract must survive the batched kernel running inside the
  // persistent-pool bucket callbacks.
  const Fixture fixture = MakeFixture();
  GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates);
  ShardedSweepOptions options;
  options.shards = 4;
  options.threads = 2;
  sampler.EnableShardedSweeps(options);
  Rng rng(9);
  sampler.Sweep(rng);  // warm-up
  const std::size_t before = AllocationCount();
  for (int sweep = 0; sweep < 20; ++sweep) {
    sampler.Sweep(rng);
  }
  EXPECT_EQ(AllocationCount(), before);
}

TEST(AllocFree, ReferenceKernelSweepDoesNotAllocate) {
  // The A/B partner must obey the same contract, or bit-equality tests and benchmark
  // gates would compare against a path with different allocation behavior.
  const Fixture fixture = MakeFixture();
  GibbsOptions options;
  options.batched_reference = true;
  GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates, options);
  Rng rng(9);
  sampler.Sweep(rng);  // warm-up
  const std::size_t before = AllocationCount();
  for (int sweep = 0; sweep < 20; ++sweep) {
    sampler.Sweep(rng);
  }
  EXPECT_EQ(AllocationCount(), before);
}

TEST(AllocFree, WarmSimulationScratchDoesNotAllocate) {
  // The DES arena contract: once a SimScratch has seen one run of a given shape, further
  // runs (workload generation, route sampling, the staged event loop) touch the heap
  // zero times. Tandem routes have a fixed length, so capacity never needs to grow.
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
  const PoissonArrivals workload(2.0, 256);
  SimScratch scratch;
  Rng rng(5);
  SimulateWorkloadIntoScratch(net, workload, scratch, rng);  // warm-up
  const std::size_t before = AllocationCount();
  for (int i = 0; i < 10; ++i) {
    SimulateWorkloadIntoScratch(net, workload, scratch, rng);
  }
  EXPECT_EQ(AllocationCount(), before);
}

TEST(AllocFree, WarmScratchToEventLogDoesNotAllocate) {
  // EventLog::Reset keeps every buffer's capacity (events, per-task chains, per-queue
  // orders), so exporting a warm arena into a reused log is also allocation-free.
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
  const PoissonArrivals workload(2.0, 256);
  SimScratch scratch;
  EventLog log(net.NumQueues());
  Rng rng(5);
  SimulateWorkloadIntoScratch(net, workload, scratch, rng);
  ScratchToEventLog(scratch, net.NumQueues(), log);  // warm-up
  const std::size_t before = AllocationCount();
  for (int i = 0; i < 10; ++i) {
    SimulateWorkloadIntoScratch(net, workload, scratch, rng);
    ScratchToEventLog(scratch, net.NumQueues(), log);
  }
  EXPECT_EQ(AllocationCount(), before);
}

TEST(AllocFree, TelemetryUpdatesDoNotAllocate) {
  // The metric hot paths are relaxed atomics into pre-registered storage; the span ring
  // is a fixed per-thread array. The one-time setup cost (bundle registration, the
  // stage-histogram table, this thread's ring) is paid in the warm-up — after that,
  // counter adds, gauge high-water marks, histogram records, and span captures must
  // never touch the heap.
  Timeline::SetLevel(3);
  const StreamCounters& counters = StreamCounters::Get();  // warm-up: registration
  Histogram* h = MetricRegistry::Global().AddHistogram("qnet_test_allocfree_ns");
  h->Record(1);
  { ScopedSpan span(SpanStage::kSweepTile); }  // warm-up: ring + stage table
  const std::size_t before = AllocationCount();
  for (int i = 0; i < 1000; ++i) {
    counters.tasks_ingested->Increment();
    counters.fit_iterations->Add(3);
    counters.peak_queue_depth->SetMax(static_cast<double>(i));
    h->Record(static_cast<std::uint64_t>(i));
    ScopedSpan span(SpanStage::kSweepTile);
  }
  EXPECT_EQ(AllocationCount(), before);
  Timeline::SetLevel(1);
}

TEST(AllocFree, InstrumentedShardedSweepDoesNotAllocate) {
  // The observability acceptance gate: a warmed-up colored sweep stays allocation-free
  // with EVERY span level armed (color, bucket, and tile spans recording into the
  // thread ring plus their stage histograms). Telemetry that allocated per sweep would
  // fail here before it ever showed up as benchmark noise.
  const Fixture fixture = MakeFixture();
  GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates);
  ShardedSweepOptions options;
  options.shards = 4;
  options.threads = 1;
  sampler.EnableShardedSweeps(options);
  Timeline::SetLevel(3);
  Rng rng(9);
  sampler.Sweep(rng);  // warm-up (ring registration, stage-histogram table)
  const std::size_t before = AllocationCount();
  for (int sweep = 0; sweep < 20; ++sweep) {
    sampler.Sweep(rng);
  }
  EXPECT_EQ(AllocationCount(), before);
  Timeline::SetLevel(1);
}

TEST(AllocFree, ChangeMonitorObserveDoesNotAllocate) {
  // The detection tap must never add per-window heap traffic to the streaming loop:
  // CUSUM state is scalar, the BOCPD run-length posterior lives in fixed vectors, and
  // the merged-tail snapshot/rewind copies same-shape vectors (no reallocation). The
  // warm-up covers arming every detector plus the monitor's log reservations.
  ChangeMonitor monitor(3);
  WindowEstimate e;
  e.tasks = 120;
  e.window_local_arrival_rate = true;
  e.rates = {4.0, 10.0, 8.0};
  e.mean_wait = {0.0, 0.1, 0.25};
  std::size_t w = 0;
  for (; w < 16; ++w) {  // warm-up: past every detector's 8-window arming point
    e.t0 = 30.0 * static_cast<double>(w);
    e.t1 = e.t0 + 30.0;
    monitor.Observe(e);
  }
  const std::size_t before = AllocationCount();
  for (int i = 0; i < 1000; ++i, ++w) {
    e.t0 = 30.0 * static_cast<double>(w);
    e.t1 = e.t0 + 30.0;
    // Deterministic wobble inside the detectors' sigma floors (no Rng: keep the loop
    // body pure mutation of the reused estimate).
    const double tick = (i % 2 == 0) ? 1.01 : 0.99;
    e.rates[0] = 4.0 * tick;
    e.rates[1] = 10.0 / tick;
    e.mean_wait[2] = 0.25 * tick;
    monitor.Observe(e);
  }
  // The merged-tail rewind path (snapshot restore + alert-log truncation) must be
  // clean too: replace the last window in place.
  e.merged_tail_tasks = 40;
  monitor.Observe(e);
  EXPECT_EQ(AllocationCount(), before);
}

TEST(AllocFree, GeneralGibbsSweepDoesNotAllocate) {
  // The slice-sampling path (FunctionRef callbacks, geometry gathers) must also stay
  // allocation-free; exponential services keep LogPdf itself trivially clean.
  const Fixture fixture = MakeFixture();
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
  GeneralGibbsSampler sampler(fixture.init, fixture.obs, net);
  ASSERT_GT(sampler.NumLatentArrivals(), 0u);
  Rng rng(11);
  sampler.Sweep(rng);  // warm-up
  const std::size_t before = AllocationCount();
  for (int sweep = 0; sweep < 5; ++sweep) {
    sampler.Sweep(rng);
  }
  EXPECT_EQ(AllocationCount(), before);
}

}  // namespace
}  // namespace qnet
