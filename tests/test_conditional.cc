// The heart of the reproduction: validation of the Gibbs conditionals (paper Section 3,
// Figure 3) against first principles.
//
//  * The true latent value always lies inside the computed feasible window (L, U).
//  * The piecewise density built from the move geometry equals exp(LogG)/Z pointwise —
//    i.e. the alpha/beta segment construction reproduces the exact conditional.
//  * The inverse-CDF sampler matches the density's own CDF (independent code paths).
//  * The literal Figure-3 closed-form transcription and the generic sampler draw from the
//    same distribution.
//  * Applying a sampled arrival keeps the event log feasible.

#include "qnet/infer/conditional.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "qnet/model/builders.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/check.h"
#include "qnet/support/logspace.h"
#include "qnet/support/math.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

struct NetCase {
  std::string name;
  int net_kind;  // 0: tandem, 1: three-tier, 2: feedback
  std::uint64_t seed;
};

EventLog SimulateCase(const NetCase& c, std::vector<double>* rates) {
  Rng rng(c.seed);
  switch (c.net_kind) {
    case 0: {
      const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0, 6.0});
      *rates = net.ExponentialRates();
      return SimulateWorkload(net, PoissonArrivals(2.0, 120), rng);
    }
    case 1: {
      ThreeTierConfig config;
      config.tier_sizes = {1, 2, 4};
      const QueueingNetwork net = MakeThreeTierNetwork(config);
      *rates = net.ExponentialRates();
      return SimulateWorkload(net, PoissonArrivals(10.0, 120), rng);
    }
    default: {
      const QueueingNetwork net = MakeFeedbackNetwork(1.0, 4.0, 0.5);
      *rates = net.ExponentialRates();
      return SimulateWorkload(net, PoissonArrivals(1.0, 120), rng);
    }
  }
}

class ConditionalGeometryTest : public ::testing::TestWithParam<NetCase> {};

TEST_P(ConditionalGeometryTest, TrueValueLiesInWindow) {
  std::vector<double> rates;
  const EventLog log = SimulateCase(GetParam(), &rates);
  std::size_t checked = 0;
  for (EventId e = 0; static_cast<std::size_t>(e) < log.NumEvents(); ++e) {
    if (log.At(e).initial) {
      continue;
    }
    const ArrivalMove move = GatherArrivalMove(log, e, rates);
    EXPECT_LE(move.lower, log.Arrival(e) + 1e-9) << "event " << e;
    EXPECT_GE(move.upper, log.Arrival(e) - 1e-9) << "event " << e;
    ++checked;
  }
  EXPECT_GT(checked, 100u);
}

TEST_P(ConditionalGeometryTest, DensityMatchesLogGPointwise) {
  std::vector<double> rates;
  const EventLog log = SimulateCase(GetParam(), &rates);
  Rng rng(GetParam().seed + 1);
  std::size_t checked = 0;
  for (EventId e = 0; static_cast<std::size_t>(e) < log.NumEvents() && checked < 60; ++e) {
    if (log.At(e).initial) {
      continue;
    }
    const ArrivalMove move = GatherArrivalMove(log, e, rates);
    if (!(move.upper - move.lower > 1e-9)) {
      continue;
    }
    const PiecewiseExpDensity density = BuildArrivalDensity(move);
    const double log_z = density.LogNormalizer();
    for (int i = 0; i < 10; ++i) {
      const double a = rng.Uniform(move.lower, move.upper);
      // Normalized density must equal LogG - logZ everywhere in the window.
      EXPECT_NEAR(density.LogPdf(a), move.LogG(a) - log_z, 1e-7)
          << GetParam().name << " event " << e << " a=" << a;
    }
    ++checked;
  }
  EXPECT_GT(checked, 30u);
}

TEST_P(ConditionalGeometryTest, SampledArrivalsPreserveFeasibility) {
  std::vector<double> rates;
  EventLog log = SimulateCase(GetParam(), &rates);
  Rng rng(GetParam().seed + 2);
  for (int round = 0; round < 3; ++round) {
    for (EventId e = 0; static_cast<std::size_t>(e) < log.NumEvents(); ++e) {
      const Event& ev = log.At(e);
      if (ev.initial) {
        continue;
      }
      const ArrivalMove move = GatherArrivalMove(log, e, rates);
      const double a = SampleArrival(move, rng);
      ASSERT_GE(a, move.lower - 1e-9);
      ASSERT_LE(a, move.upper + 1e-9);
      log.SetArrival(e, a);
      log.SetDeparture(ev.pi, a);
    }
    for (EventId e = 0; static_cast<std::size_t>(e) < log.NumEvents(); ++e) {
      const Event& ev = log.At(e);
      if (ev.tau == kNoEvent) {
        const FinalDepartureMove move = GatherFinalDepartureMove(log, e, rates);
        log.SetDeparture(e, SampleFinalDeparture(move, rng));
      }
    }
    std::string why;
    ASSERT_TRUE(log.IsFeasible(1e-7, &why)) << GetParam().name << " round " << round
                                            << ": " << why;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Networks, ConditionalGeometryTest,
    ::testing::Values(NetCase{"tandem", 0, 101}, NetCase{"three_tier", 1, 202},
                      NetCase{"feedback", 2, 303}),
    [](const ::testing::TestParamInfo<NetCase>& param_info) { return param_info.param.name; });

// A fully-populated neighborhood with both breakpoints interior, built by hand so every
// branch of the three-piece structure carries mass.
ArrivalMove MakeFullMove(double mu_e, double mu_pi) {
  ArrivalMove move;
  move.event = 0;
  move.d_e = 10.0;
  move.mu_e = mu_e;
  move.mu_pi = mu_pi;
  move.c_pi = 1.0;
  move.has_t1 = true;
  move.t1 = 4.0;  // d_rho(e)
  move.has_nu_pi = true;
  move.t2 = 6.0;       // a_nu(pi)
  move.d_nu_pi = 9.0;  // d_nu(pi)
  move.lower = 1.5;    // max(c_pi, a_rho(e))
  move.upper = 8.5;    // min(d_e, a_nu(e), d_nu(pi))
  return move;
}

TEST(ArrivalConditional, SamplerMatchesOwnCdfByKs) {
  const ArrivalMove move = MakeFullMove(2.0, 3.0);
  const PiecewiseExpDensity density = BuildArrivalDensity(move);
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 8000; ++i) {
    xs.push_back(SampleArrival(move, rng));
  }
  const double d = KsStatistic(xs, [&](double x) { return density.Cdf(x); });
  EXPECT_GT(KsPValue(d, xs.size()), 1e-4) << "d=" << d;
}

class ClosedFormTest : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(ClosedFormTest, MatchesGenericSampler) {
  // delta_mu > 0, == 0, < 0 middle-piece regimes, both breakpoint orders.
  const auto [mu_e, mu_pi] = GetParam();
  for (bool swap_breaks : {false, true}) {
    ArrivalMove move = MakeFullMove(mu_e, mu_pi);
    if (swap_breaks) {
      std::swap(move.t1, move.t2);  // now a_nu(pi) < d_rho(e): uniform middle piece
    }
    const PiecewiseExpDensity density = BuildArrivalDensity(move);
    Rng rng(11);
    std::vector<double> xs;
    for (int i = 0; i < 6000; ++i) {
      const double x = SampleArrivalClosedForm(move, rng);
      ASSERT_GE(x, move.lower - 1e-9);
      ASSERT_LE(x, move.upper + 1e-9);
      xs.push_back(x);
    }
    const double d = KsStatistic(xs, [&](double x) { return density.Cdf(x); });
    EXPECT_GT(KsPValue(d, xs.size()), 1e-4)
        << "mu_e=" << mu_e << " mu_pi=" << mu_pi << " swapped=" << swap_breaks << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(DeltaMuRegimes, ClosedFormTest,
                         ::testing::Values(std::make_pair(2.0, 3.0),   // delta_mu > 0
                                           std::make_pair(3.0, 3.0),   // delta_mu == 0
                                           std::make_pair(4.0, 1.5))); // delta_mu < 0

TEST(ArrivalConditional, BreakpointsOutsideWindowCollapseToFewerPieces) {
  ArrivalMove move = MakeFullMove(2.0, 3.0);
  move.t1 = 0.5;  // below lower
  move.t2 = 9.5;  // above upper
  const PiecewiseExpDensity density = BuildArrivalDensity(move);
  EXPECT_EQ(density.NumSegments(), 1u);
  // Slope there: +mu_e (past t1) - mu_pi (s_pi) + 0 (before t2) = 2 - 3 = -1.
  EXPECT_NEAR(density.Segment(0).beta, -1.0, 1e-12);
}

TEST(ArrivalConditional, MissingNeighborsDropTermsAndBounds) {
  ArrivalMove move = MakeFullMove(2.0, 3.0);
  move.has_t1 = false;  // first event at its queue: service runs from a
  move.has_nu_pi = false;
  const PiecewiseExpDensity density = BuildArrivalDensity(move);
  EXPECT_EQ(density.NumSegments(), 1u);
  // Slope: +mu_e - mu_pi everywhere.
  EXPECT_NEAR(density.Segment(0).beta, -1.0, 1e-12);
  // LogG consistency still holds.
  const double a = 5.0;
  EXPECT_NEAR(density.LogPdf(a), move.LogG(a) - density.LogNormalizer(), 1e-9);
}

TEST(ArrivalConditional, ConsecutiveSameQueueVisitsAreFlat) {
  // rho(e) == pi(e) with equal rates: the conditional is uniform on the window.
  const QueueingNetwork net = MakeFeedbackNetwork(1.0, 4.0, 0.9);
  const auto rates = net.ExponentialRates();
  Rng rng(13);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(1.0, 60), rng);
  bool found = false;
  for (EventId e = 0; static_cast<std::size_t>(e) < log.NumEvents(); ++e) {
    const Event& ev = log.At(e);
    if (ev.initial || ev.rho == kNoEvent || ev.rho != ev.pi) {
      continue;
    }
    const ArrivalMove move = GatherArrivalMove(log, e, rates);
    EXPECT_TRUE(move.rho_is_pi);
    if (!(move.upper - move.lower > 1e-9)) {
      continue;
    }
    const PiecewiseExpDensity density = BuildArrivalDensity(move);
    for (std::size_t s = 0; s < density.NumSegments(); ++s) {
      EXPECT_NEAR(density.Segment(s).beta, 0.0, 1e-9);
    }
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ArrivalConditional, DegenerateWindowReturnsMidpoint) {
  ArrivalMove move = MakeFullMove(2.0, 3.0);
  move.lower = 5.0;
  move.upper = 5.0;
  Rng rng(17);
  EXPECT_DOUBLE_EQ(SampleArrival(move, rng), 5.0);
}

TEST(FinalDepartureConditional, DensityMatchesLogG) {
  FinalDepartureMove move;
  move.event = 0;
  move.mu_e = 2.5;
  move.c_e = 3.0;
  move.has_nu = true;
  move.t_nu = 4.0;
  move.d_nu = 7.0;
  move.lower = 3.0;
  move.upper = 7.0;
  const PiecewiseExpDensity density = BuildFinalDepartureDensity(move);
  const double log_z = density.LogNormalizer();
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    const double d = rng.Uniform(3.0, 7.0);
    EXPECT_NEAR(density.LogPdf(d), move.LogG(d) - log_z, 1e-9) << "d=" << d;
  }
  // Above t_nu the density is flat (the two exponential terms cancel).
  EXPECT_NEAR(density.LogPdf(5.0), density.LogPdf(6.5), 1e-9);
  EXPECT_GT(density.LogPdf(3.1), density.LogPdf(3.9));
}

TEST(FinalDepartureConditional, UnboundedTailIsShiftedExponential) {
  FinalDepartureMove move;
  move.event = 0;
  move.mu_e = 4.0;
  move.c_e = 2.0;
  move.has_nu = false;
  move.lower = 2.0;
  move.upper = kPosInf;
  Rng rng(23);
  RunningStat rs;
  for (int i = 0; i < 100000; ++i) {
    const double d = SampleFinalDeparture(move, rng);
    ASSERT_GE(d, 2.0);
    rs.Add(d);
  }
  EXPECT_NEAR(rs.Mean(), 2.25, 0.01);  // c_e + 1/mu
}

TEST(FinalDepartureConditional, GatherRejectsNonFinalEvents) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 4.0});
  const auto rates = net.ExponentialRates();
  Rng rng(29);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(2.0, 10), rng);
  const EventId first_visit = log.TaskEvents(0)[1];
  EXPECT_THROW(GatherFinalDepartureMove(log, first_visit, rates), Error);
}

TEST(ArrivalConditional, GatherRejectsInitialEvents) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0});
  const auto rates = net.ExponentialRates();
  Rng rng(31);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(2.0, 10), rng);
  EXPECT_THROW(GatherArrivalMove(log, log.TaskEvents(0)[0], rates), Error);
}

TEST(ArrivalConditional, NumericIntegrationCrossCheck) {
  // Independent validation: CDF from trapezoid integration of exp(LogG).
  const ArrivalMove move = MakeFullMove(2.5, 1.5);
  const PiecewiseExpDensity density = BuildArrivalDensity(move);
  const int steps = 200000;
  const double h = (move.upper - move.lower) / steps;
  double mass = 0.0;
  std::vector<std::pair<double, double>> checkpoints;  // (x, numeric cdf)
  double next_check = move.lower + 1.0;
  const double log_z = density.LogNormalizer();
  for (int i = 0; i <= steps; ++i) {
    const double x = move.lower + i * h;
    const double w = (i == 0 || i == steps) ? 0.5 : 1.0;
    mass += w * std::exp(move.LogG(x) - log_z);
    if (x >= next_check) {
      checkpoints.emplace_back(x, mass * h);
      next_check += 1.0;
    }
  }
  EXPECT_NEAR(mass * h, 1.0, 1e-3);
  for (const auto& [x, numeric_cdf] : checkpoints) {
    EXPECT_NEAR(density.Cdf(x), numeric_cdf, 2e-3) << "x=" << x;
  }
}

}  // namespace
}  // namespace qnet
