// Slow-request diagnosis: hand-checked attribution and the paper's "slow-request bottleneck
// differs from the average bottleneck" scenario (intermittently failing resource).

#include "qnet/infer/slow_requests.h"

#include <gtest/gtest.h>

#include "qnet/infer/initializer.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/fault.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/check.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

TEST(SlowRequests, HandComputedAttribution) {
  // Two tasks on one queue; task 1 waits 1.0 while task 0 is served.
  EventLog log(2);
  log.AddTask(1.0);
  log.AddTask(2.0);
  log.AddVisit(0, 0, 1, 1.0, 3.0);  // response 2.0
  log.AddVisit(1, 0, 1, 2.0, 4.0);  // response 2.0 (wait 1.0 + service 1.0)
  log.BuildQueueLinks();
  const SlowRequestReport report = AnalyzeSlowRequests(log, 0.5);
  EXPECT_EQ(report.num_tasks, 2u);
  EXPECT_GE(report.num_slow, 1u);
  // All-task attribution: mean wait (0 + 1)/2, mean service (2 + 1)/2.
  EXPECT_NEAR(report.all_wait[1], 0.5, 1e-12);
  EXPECT_NEAR(report.all_service[1], 1.5, 1e-12);
  EXPECT_EQ(report.SlowBottleneckQueue(), 1);
}

TEST(SlowRequests, IntermittentFaultShowsOnlyInSlowTail) {
  // Queue 2 is intermittently 30x slower for short windows covering ~5% of time: queue 1
  // is the steady (mild) bottleneck on average, while the *slow-request* bottleneck is
  // queue 2 — the paper's motivating distinction.
  const QueueingNetwork net = MakeTandemNetwork(1.0, {2.5, 20.0});
  FaultSchedule faults;
  for (int w = 0; w < 20; ++w) {
    const double t0 = 100.0 * w + 50.0;
    faults.AddSlowdown(2, t0, t0 + 5.0, 30.0);
  }
  SimOptions options;
  options.faults = &faults;
  Rng rng(3);
  const EventLog log =
      Simulate(net, PoissonArrivals(1.0, 2000).Generate(rng), rng, options);

  const SlowRequestReport report = AnalyzeSlowRequests(log, 0.95);
  // Average behavior: queue 1 dominates waiting.
  EXPECT_GT(report.all_wait[1], report.all_wait[2]);
  // Slow tail: queue 2's share grows dramatically relative to its average share.
  const double q2_ratio = report.slow_wait[2] / (report.all_wait[2] + 1e-9);
  const double q1_ratio = report.slow_wait[1] / (report.all_wait[1] + 1e-9);
  EXPECT_GT(q2_ratio, q1_ratio);
  EXPECT_EQ(report.MostDisproportionateQueue(), 2);
}

TEST(SlowRequests, PosteriorVariantAgreesOnModeratelyObservedLog) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
  const auto rates = net.ExponentialRates();
  Rng rng(5);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 400), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.5;
  const Observation obs = scheme.Apply(truth, rng);
  GibbsSampler sampler(InitializeFeasible(truth, obs, rates, rng), obs, rates);
  const SlowRequestReport posterior = AnalyzeSlowRequestsPosterior(sampler, rng, 40, 0.9);
  const SlowRequestReport exact = AnalyzeSlowRequests(truth, 0.9);
  // Posterior attribution should track the complete-data attribution.
  for (int q = 1; q <= 2; ++q) {
    const auto qi = static_cast<std::size_t>(q);
    EXPECT_NEAR(posterior.all_service[qi], exact.all_service[qi],
                0.3 * exact.all_service[qi] + 0.02)
        << "queue " << q;
    EXPECT_NEAR(posterior.all_wait[qi], exact.all_wait[qi], 0.5 * exact.all_wait[qi] + 0.05)
        << "queue " << q;
  }
}

TEST(SlowRequests, GuardsBadInput) {
  EXPECT_THROW(
      {
        EventLog log(2);
        AnalyzeSlowRequests(log, 0.99);
      },
      Error);
  EventLog log(2);
  log.AddTask(1.0);
  log.AddVisit(0, 0, 1, 1.0, 2.0);
  log.BuildQueueLinks();
  EXPECT_THROW(AnalyzeSlowRequests(log, 1.5), Error);
}

}  // namespace
}  // namespace qnet
