// Tests for QueueingNetwork and the canonical builders.

#include "qnet/model/builders.h"
#include "qnet/model/network.h"

#include <memory>

#include <gtest/gtest.h>

#include "qnet/dist/exponential.h"
#include "qnet/dist/lognormal.h"
#include "qnet/support/check.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

TEST(QueueingNetwork, BasicConstruction) {
  QueueingNetwork net(std::make_unique<Exponential>(10.0));
  EXPECT_EQ(net.NumQueues(), 1);
  const int q = net.AddQueue("db", std::make_unique<Exponential>(5.0));
  EXPECT_EQ(q, 1);
  EXPECT_EQ(net.QueueName(1), "db");
  EXPECT_EQ(net.QueueIdByName("db"), 1);
  EXPECT_EQ(net.QueueIdByName("nope"), -1);
  EXPECT_DOUBLE_EQ(net.ArrivalRate(), 10.0);
}

TEST(QueueingNetwork, DuplicateQueueNameRejected) {
  QueueingNetwork net(std::make_unique<Exponential>(1.0));
  net.AddQueue("a", std::make_unique<Exponential>(1.0));
  EXPECT_THROW(net.AddQueue("a", std::make_unique<Exponential>(1.0)), Error);
}

TEST(QueueingNetwork, ExponentialRatesRequiresExponential) {
  QueueingNetwork net(std::make_unique<Exponential>(2.0));
  net.AddQueue("ln", std::make_unique<LogNormal>(0.0, 1.0));
  EXPECT_THROW(net.ExponentialRates(), Error);
  net.SetService(1, std::make_unique<Exponential>(4.0));
  const auto rates = net.ExponentialRates();
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0], 2.0);
  EXPECT_DOUBLE_EQ(rates[1], 4.0);
}

TEST(QueueingNetwork, CloneIsDeep) {
  QueueingNetwork net = MakeSingleQueueNetwork(10.0, 5.0);
  QueueingNetwork copy = net.Clone();
  copy.SetService(1, std::make_unique<Exponential>(99.0));
  EXPECT_DOUBLE_EQ(net.ExponentialRates()[1], 5.0);
  EXPECT_DOUBLE_EQ(copy.ExponentialRates()[1], 99.0);
  EXPECT_NO_THROW(copy.Validate());
}

TEST(Builders, ThreeTierShape) {
  ThreeTierConfig config;
  config.tier_sizes = {1, 2, 4};
  const QueueingNetwork net = MakeThreeTierNetwork(config);
  EXPECT_EQ(net.NumQueues(), 1 + 1 + 2 + 4);
  EXPECT_NO_THROW(net.Validate());
  // Every route visits exactly one server per tier, in tier order.
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto route = net.GetFsm().SampleRoute(rng);
    ASSERT_EQ(route.size(), 3u);
    EXPECT_EQ(route[0].queue, 1);                           // single tier-0 server
    EXPECT_TRUE(route[1].queue == 2 || route[1].queue == 3);  // tier 1
    EXPECT_TRUE(route[2].queue >= 4 && route[2].queue <= 7);  // tier 2
  }
}

TEST(Builders, ThreeTierWithNetworkQueues) {
  ThreeTierConfig config;
  config.tier_sizes = {2, 2};
  config.network_queues = true;
  const QueueingNetwork net = MakeThreeTierNetwork(config);
  // 1 arrival + 4 servers + 1 inter-tier network queue.
  EXPECT_EQ(net.NumQueues(), 6);
  Rng rng(5);
  const auto route = net.GetFsm().SampleRoute(rng);
  ASSERT_EQ(route.size(), 3u);  // tier0 -> net -> tier1
  EXPECT_EQ(net.QueueName(route[1].queue).rfind("net", 0), 0u);
}

TEST(Builders, TandemVisitsAllQueuesInOrder) {
  const QueueingNetwork net = MakeTandemNetwork(1.0, {2.0, 3.0, 4.0});
  EXPECT_EQ(net.NumQueues(), 4);
  Rng rng(7);
  const auto route = net.GetFsm().SampleRoute(rng);
  ASSERT_EQ(route.size(), 3u);
  EXPECT_EQ(route[0].queue, 1);
  EXPECT_EQ(route[1].queue, 2);
  EXPECT_EQ(route[2].queue, 3);
  const auto rates = net.ExponentialRates();
  EXPECT_DOUBLE_EQ(rates[2], 3.0);
}

TEST(Builders, FeedbackRouteLengthIsGeometric) {
  const QueueingNetwork net = MakeFeedbackNetwork(1.0, 5.0, 0.25);
  Rng rng(11);
  double total = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    total += static_cast<double>(net.GetFsm().SampleRoute(rng).size());
  }
  EXPECT_NEAR(total / n, 1.0 / 0.75, 0.02);  // Geometric mean 1/(1-p).
  EXPECT_THROW(MakeFeedbackNetwork(1.0, 5.0, 1.0), Error);
}

TEST(Builders, SyntheticStructuresMatchPaperSetup) {
  const auto structures = SyntheticStructures();
  EXPECT_EQ(structures.size(), 5u);
  for (const auto& config : structures) {
    EXPECT_EQ(config.tier_sizes.size(), 3u);
    EXPECT_DOUBLE_EQ(config.arrival_rate, 10.0);
    EXPECT_DOUBLE_EQ(config.service_rate, 5.0);
    // Each structure is a permutation of {1, 2, 4}.
    auto sizes = config.tier_sizes;
    std::sort(sizes.begin(), sizes.end());
    EXPECT_EQ(sizes, (std::vector<int>{1, 2, 4}));
    EXPECT_NO_THROW(MakeThreeTierNetwork(config).Validate());
  }
}

}  // namespace
}  // namespace qnet
