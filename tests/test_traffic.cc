// Traffic-equation analysis: visit counts, utilizations, and the paper's Section 5.1
// overload characterization, cross-validated against simulation.

#include "qnet/model/traffic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "qnet/dist/gamma.h"
#include "qnet/model/builders.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/check.h"
#include "qnet/support/rng.h"
#include "qnet/webapp/movievote.h"

namespace qnet {
namespace {

TEST(SolveLinearSystem, KnownSolutions) {
  // 2x2: x + y = 3, x - y = 1 -> (2, 1).
  const auto x = SolveLinearSystem({{1.0, 1.0}, {1.0, -1.0}}, {3.0, 1.0});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
  // Requires pivoting: first pivot is zero.
  const auto y = SolveLinearSystem({{0.0, 2.0}, {3.0, 0.0}}, {4.0, 6.0});
  EXPECT_NEAR(y[0], 2.0, 1e-12);
  EXPECT_NEAR(y[1], 2.0, 1e-12);
  EXPECT_THROW(SolveLinearSystem({{1.0, 1.0}, {2.0, 2.0}}, {1.0, 1.0}), Error);
}

TEST(Traffic, TandemVisitsEveryQueueOnce) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {5.0, 4.0, 8.0});
  const TrafficAnalysis analysis = AnalyzeTraffic(net);
  for (int q = 1; q <= 3; ++q) {
    EXPECT_NEAR(analysis.queue_visits[static_cast<std::size_t>(q)], 1.0, 1e-12);
  }
  EXPECT_NEAR(analysis.utilization[1], 0.4, 1e-12);
  EXPECT_NEAR(analysis.utilization[2], 0.5, 1e-12);
  EXPECT_NEAR(analysis.utilization[3], 0.25, 1e-12);
  EXPECT_EQ(analysis.bottleneck_queue, 2);
  EXPECT_TRUE(analysis.stable);
}

TEST(Traffic, FeedbackVisitsAreGeometric) {
  const QueueingNetwork net = MakeFeedbackNetwork(1.0, 5.0, 0.4);
  const TrafficAnalysis analysis = AnalyzeTraffic(net);
  // Expected visits 1/(1 - p) = 5/3.
  EXPECT_NEAR(analysis.queue_visits[1], 1.0 / 0.6, 1e-9);
  EXPECT_NEAR(analysis.utilization[1], (1.0 / 0.6) / 5.0, 1e-9);
}

TEST(Traffic, PaperSectionFiveOneUtilizations) {
  // The paper: lambda = 10, mu = 5 => "a tier with a single server is heavily overloaded
  // [rho = 2], one with two servers barely overloaded [rho = 1], and one with four servers
  // moderately loaded [rho = 0.5]".
  ThreeTierConfig config;
  config.tier_sizes = {1, 2, 4};
  const QueueingNetwork net = MakeThreeTierNetwork(config);
  const TrafficAnalysis analysis = AnalyzeTraffic(net);
  EXPECT_NEAR(analysis.utilization[1], 2.0, 1e-9);   // single server
  EXPECT_NEAR(analysis.utilization[2], 1.0, 1e-9);   // two servers
  EXPECT_NEAR(analysis.utilization[3], 1.0, 1e-9);
  for (int q = 4; q <= 7; ++q) {
    EXPECT_NEAR(analysis.utilization[static_cast<std::size_t>(q)], 0.5, 1e-9);
  }
  EXPECT_EQ(analysis.bottleneck_queue, 1);
  EXPECT_FALSE(analysis.stable);
}

TEST(Traffic, GeneralServiceUtilizationUsesMeanServiceTimes) {
  // Non-exponential services no longer CHECK-fail: rho_q = lambda_q E[S_q], and the
  // exponential special case stays bit-identical to the historical rate arithmetic.
  QueueingNetwork net = MakeTandemNetwork(2.0, {5.0, 4.0});
  const TrafficAnalysis exponential = AnalyzeTraffic(net);
  net.SetService(2, std::make_unique<GammaDist>(4.0, 16.0));  // mean 0.25 = 1/4, like before
  const TrafficAnalysis general = AnalyzeTraffic(net);
  ASSERT_FALSE(net.AllServicesExponential());
  EXPECT_NEAR(general.utilization[1], exponential.utilization[1], 1e-12);
  EXPECT_NEAR(general.utilization[2], exponential.utilization[2], 1e-12);
  EXPECT_EQ(general.bottleneck_queue, exponential.bottleneck_queue);
  EXPECT_NEAR(general.arrival_rates[2], 2.0, 1e-12);
}

TEST(Traffic, MatchesSimulatedVisitCounts) {
  const webapp::MovieVoteConfig config;
  const webapp::MovieVoteTestbed testbed = webapp::MakeTestbed(config);
  const TrafficAnalysis analysis = AnalyzeTraffic(testbed.network);
  // Network queue visited twice per request; database once; web servers by LB weight.
  EXPECT_NEAR(analysis.queue_visits[static_cast<std::size_t>(testbed.network_queue)], 2.0,
              1e-9);
  EXPECT_NEAR(analysis.queue_visits[static_cast<std::size_t>(testbed.db_queue)], 1.0, 1e-9);
  EXPECT_NEAR(analysis.queue_visits[static_cast<std::size_t>(testbed.web_queues[0])],
              config.starved_weight, 1e-9);

  Rng rng(3);
  const EventLog trace = webapp::GenerateTrace(testbed, config, rng);
  const auto counts = trace.PerQueueCount();
  const double tasks = static_cast<double>(trace.NumTasks());
  for (int q = 1; q < testbed.network.NumQueues(); ++q) {
    const double simulated =
        static_cast<double>(counts[static_cast<std::size_t>(q)]) / tasks;
    const double predicted = analysis.queue_visits[static_cast<std::size_t>(q)];
    EXPECT_NEAR(simulated, predicted, 0.1 * predicted + 0.01)
        << testbed.network.QueueName(q);
  }
}

}  // namespace
}  // namespace qnet
