// Tests for the MCMC diagnostics.

#include "qnet/infer/diagnostics.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "qnet/support/check.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

std::vector<double> WhiteNoise(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(rng.Normal());
  }
  return xs;
}

std::vector<double> Ar1(std::size_t n, double phi, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  double x = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x = phi * x + rng.Normal() * std::sqrt(1.0 - phi * phi);
    xs.push_back(x);
  }
  return xs;
}

TEST(Autocorrelation, LagZeroIsOne) {
  const auto xs = WhiteNoise(1000, 3);
  EXPECT_DOUBLE_EQ(Autocorrelation(xs, 0), 1.0);
}

TEST(Autocorrelation, WhiteNoiseNearZero) {
  const auto xs = WhiteNoise(20000, 5);
  for (std::size_t lag : {1u, 5u, 20u}) {
    EXPECT_NEAR(Autocorrelation(xs, lag), 0.0, 0.03) << "lag=" << lag;
  }
}

TEST(Autocorrelation, Ar1MatchesPhiPowers) {
  const double phi = 0.8;
  const auto xs = Ar1(200000, phi, 7);
  EXPECT_NEAR(Autocorrelation(xs, 1), phi, 0.02);
  EXPECT_NEAR(Autocorrelation(xs, 2), phi * phi, 0.03);
  EXPECT_NEAR(Autocorrelation(xs, 5), std::pow(phi, 5.0), 0.04);
}

TEST(Autocorrelation, ConstantSeriesIsDefined) {
  const std::vector<double> xs(100, 3.5);
  EXPECT_DOUBLE_EQ(Autocorrelation(xs, 1), 0.0);
  EXPECT_DOUBLE_EQ(Autocorrelation(xs, 0), 1.0);
}

TEST(EffectiveSampleSize, WhiteNoiseNearN) {
  const auto xs = WhiteNoise(20000, 11);
  const double ess = EffectiveSampleSize(xs);
  EXPECT_GT(ess, 0.7 * 20000.0);
  EXPECT_LE(ess, 1.3 * 20000.0);
}

TEST(EffectiveSampleSize, Ar1MatchesTheory) {
  // tau = (1 + phi) / (1 - phi) for AR(1).
  const double phi = 0.6;
  const auto xs = Ar1(200000, phi, 13);
  const double tau = IntegratedAutocorrTime(xs);
  EXPECT_NEAR(tau, (1.0 + phi) / (1.0 - phi), 0.5);
  EXPECT_NEAR(EffectiveSampleSize(xs), 200000.0 / tau, 1.0);
}

TEST(GelmanRubin, SameDistributionNearOne) {
  std::vector<std::vector<double>> chains;
  for (int c = 0; c < 4; ++c) {
    chains.push_back(WhiteNoise(5000, 17 + static_cast<std::uint64_t>(c)));
  }
  EXPECT_NEAR(GelmanRubin(chains), 1.0, 0.02);
}

TEST(GelmanRubin, ShiftedChainsDetected) {
  auto a = WhiteNoise(2000, 23);
  auto b = WhiteNoise(2000, 29);
  for (double& x : b) {
    x += 3.0;  // chain stuck in a different mode
  }
  EXPECT_GT(GelmanRubin({a, b}), 1.5);
}

TEST(GelmanRubin, GuardsBadInput) {
  EXPECT_THROW(GelmanRubin({{1.0, 2.0}}), Error);                 // one chain
  EXPECT_THROW(GelmanRubin({{1.0, 2.0}, {1.0}}), Error);          // ragged
  EXPECT_THROW(GelmanRubin({{1.0}, {1.0}}), Error);               // too short
}

}  // namespace
}  // namespace qnet
