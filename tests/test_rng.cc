// Tests for the xoshiro256++-based RNG and its samplers. Statistical checks use fixed seeds
// and generous tolerances so they are deterministic and non-flaky.

#include "qnet/support/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "qnet/support/check.h"
#include "qnet/support/math.h"

namespace qnet {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitIntervalWithCorrectMoments) {
  Rng rng(42);
  RunningStat rs;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    rs.Add(u);
  }
  EXPECT_NEAR(rs.Mean(), 0.5, 0.01);
  EXPECT_NEAR(rs.Variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformIntIsUnbiased) {
  Rng rng(9);
  std::vector<std::size_t> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.UniformInt(7)];
  }
  const std::vector<double> expected(7, 1.0 / 7.0);
  EXPECT_LT(MaxFrequencyDeviation(counts, expected), 0.01);
  EXPECT_THROW(rng.UniformInt(0), Error);
}

TEST(Rng, ExponentialMoments) {
  Rng rng(7);
  RunningStat rs;
  for (int i = 0; i < 200000; ++i) {
    rs.Add(rng.Exponential(4.0));
  }
  EXPECT_NEAR(rs.Mean(), 0.25, 0.005);
  EXPECT_NEAR(rs.Variance(), 0.0625, 0.005);
}

TEST(Rng, ExponentialKsAgainstTrueCdf) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(rng.Exponential(2.0));
  }
  const double d = KsStatistic(xs, [](double x) { return 1.0 - std::exp(-2.0 * x); });
  EXPECT_GT(KsPValue(d, xs.size()), 1e-3);
}

TEST(Rng, TruncatedExponentialStaysInBounds) {
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.TruncatedExponential(3.0, 1.5, 2.0);
    ASSERT_GE(x, 1.5);
    ASSERT_LE(x, 2.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  RunningStat rs;
  for (int i = 0; i < 200000; ++i) {
    rs.Add(rng.Normal(5.0, 2.0));
  }
  EXPECT_NEAR(rs.Mean(), 5.0, 0.05);
  EXPECT_NEAR(rs.Stddev(), 2.0, 0.05);
}

TEST(Rng, GammaMomentsAcrossShapes) {
  Rng rng(19);
  for (double shape : {0.5, 1.0, 2.5, 9.0}) {
    RunningStat rs;
    for (int i = 0; i < 100000; ++i) {
      rs.Add(rng.Gamma(shape, 2.0));  // scale 2 => mean 2*shape, var 4*shape
    }
    EXPECT_NEAR(rs.Mean(), 2.0 * shape, 0.12 * shape + 0.05) << "shape=" << shape;
    EXPECT_NEAR(rs.Variance(), 4.0 * shape, 0.5 * shape + 0.2) << "shape=" << shape;
  }
}

TEST(Rng, LogNormalMoments) {
  Rng rng(23);
  RunningStat rs;
  for (int i = 0; i < 200000; ++i) {
    rs.Add(rng.LogNormal(0.0, 0.5));
  }
  EXPECT_NEAR(rs.Mean(), std::exp(0.125), 0.01);
}

TEST(Rng, PoissonMomentsSmallAndLargeMean) {
  Rng rng(29);
  for (double mean : {0.5, 5.0, 80.0}) {
    RunningStat rs;
    for (int i = 0; i < 50000; ++i) {
      rs.Add(static_cast<double>(rng.Poisson(mean)));
    }
    EXPECT_NEAR(rs.Mean(), mean, 0.05 * mean + 0.05) << "mean=" << mean;
    EXPECT_NEAR(rs.Variance(), mean, 0.15 * mean + 0.1) << "mean=" << mean;
  }
}

TEST(Rng, CategoricalFrequenciesMatchWeights) {
  Rng rng(31);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<std::size_t> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.Categorical(weights)];
  }
  const std::vector<double> expected = {0.1, 0.3, 0.6};
  EXPECT_LT(MaxFrequencyDeviation(counts, expected), 0.01);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.Categorical(std::vector<double>{}), Error);
  EXPECT_THROW(rng.Categorical(std::vector<double>{0.0, 0.0}), Error);
  EXPECT_THROW(rng.Categorical(std::vector<double>{1.0, -1.0}), Error);
}

TEST(Rng, CategoricalFromLogsMatchesLinear) {
  Rng rng_a(37);
  Rng rng_b(37);
  const std::vector<double> weights = {0.2, 0.5, 0.3};
  std::vector<double> log_weights;
  for (double w : weights) {
    log_weights.push_back(std::log(w) + 500.0);  // Shared offset must not matter.
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng_a.Categorical(weights), rng_b.CategoricalFromLogs(log_weights));
  }
}

TEST(Rng, SampleWithoutReplacementProperties) {
  Rng rng(41);
  const auto picked = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(picked.size(), 30u);
  EXPECT_TRUE(std::is_sorted(picked.begin(), picked.end()));
  const std::set<std::size_t> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t idx : picked) {
    EXPECT_LT(idx, 100u);
  }
  EXPECT_EQ(rng.SampleWithoutReplacement(5, 5).size(), 5u);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
  EXPECT_THROW(rng.SampleWithoutReplacement(3, 4), Error);
}

TEST(Rng, SampleWithoutReplacementIsUniform) {
  Rng rng(43);
  std::vector<std::size_t> counts(10, 0);
  const int reps = 20000;
  for (int r = 0; r < reps; ++r) {
    for (std::size_t idx : rng.SampleWithoutReplacement(10, 3)) {
      ++counts[idx];
    }
  }
  const std::vector<double> expected(10, 0.1);
  EXPECT_LT(MaxFrequencyDeviation(counts, expected), 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(47);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.Shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Rng, ForkProducesDistinctStream) {
  Rng parent(53);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += parent.NextU64() == child.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace qnet
