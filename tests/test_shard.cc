// Sharded streaming front-end: lane routing, watermark coordination, and deterministic
// pooled estimates.
//
// The load-bearing assertions are bit-exactness ones, mirroring the repo's established
// threading contracts: (i) a single-lane fleet reproduces the plain StreamingEstimator
// bit-exactly; (ii) for a FIXED lane count K the pooled estimate sequence is
// bit-identical across sharded-sweep thread counts, pipelining, queue capacities
// (backpressure), and repeated runs; (iii) window spans, counts, and emission indices
// are bit-identical across DIFFERENT lane counts (the span tracker is global). Across
// lane counts the pooled fits themselves are statistically consistent, not bit-equal —
// each lane fits its own hash-thinned sub-stream by design — which a tolerance test
// pins.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "support/vector_stream.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/shard/lane_router.h"
#include "qnet/shard/sharded_streaming.h"
#include "qnet/sim/simulator.h"
#include "qnet/stream/replay_stream.h"
#include "qnet/stream/streaming_estimator.h"
#include "qnet/stream/window_assembler.h"
#include "qnet/support/check.h"
#include "qnet/support/rng.h"
#include "qnet/support/task_hash.h"
#include "qnet/trace/window_csv.h"

namespace qnet {
namespace {

struct Fixture {
  EventLog truth;
  Observation obs;

  Fixture(double fraction = 0.5, std::size_t tasks = 400, std::uint64_t seed = 7)
      : truth(MakeLog(tasks, seed)), obs(MakeObs(truth, fraction, seed)) {}

  static EventLog MakeLog(std::size_t tasks, std::uint64_t seed) {
    const QueueingNetwork net = MakeTandemNetwork(4.0, {8.0, 9.0});
    Rng rng(seed);
    return SimulateWorkload(net, PoissonArrivals(4.0, tasks), rng);
  }
  static Observation MakeObs(const EventLog& log, double fraction, std::uint64_t seed) {
    Rng rng(seed + 1);
    TaskSamplingScheme scheme;
    scheme.fraction = fraction;
    return scheme.Apply(log, rng);
  }
};

void ExpectEstimatesIdentical(const std::vector<WindowEstimate>& a,
                              const std::vector<WindowEstimate>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t w = 0; w < a.size(); ++w) {
    EXPECT_EQ(a[w].t0, b[w].t0) << "window " << w;
    EXPECT_EQ(a[w].t1, b[w].t1) << "window " << w;
    EXPECT_EQ(a[w].tasks, b[w].tasks) << "window " << w;
    EXPECT_EQ(a[w].merged_tail_tasks, b[w].merged_tail_tasks) << "window " << w;
    EXPECT_EQ(a[w].window_local_arrival_rate, b[w].window_local_arrival_rate)
        << "window " << w;
    EXPECT_EQ(a[w].degraded, b[w].degraded) << "window " << w;
    EXPECT_EQ(a[w].fit_iterations, b[w].fit_iterations) << "window " << w;
    ASSERT_EQ(a[w].rates.size(), b[w].rates.size());
    for (std::size_t q = 0; q < a[w].rates.size(); ++q) {
      EXPECT_EQ(a[w].rates[q], b[w].rates[q]) << "window " << w << " q=" << q;
    }
    ASSERT_EQ(a[w].mean_wait.size(), b[w].mean_wait.size());
    for (std::size_t q = 0; q < a[w].mean_wait.size(); ++q) {
      EXPECT_EQ(a[w].mean_wait[q], b[w].mean_wait[q]) << "window " << w << " q=" << q;
    }
  }
}

StreamingEstimatorOptions ShortStemOptions(double window_duration = 25.0) {
  StreamingEstimatorOptions options;
  options.window.window_duration = window_duration;
  options.stem.iterations = 30;
  options.stem.burn_in = 10;
  options.stem.wait_sweeps = 5;
  return options;
}

std::vector<WindowEstimate> RunFleet(const Fixture& f, const ShardedStreamingOptions& options,
                                     std::uint64_t seed, FleetStats* stats = nullptr) {
  LogReplayStream stream(f.truth, f.obs);
  ShardedStreamingEstimator fleet({1.0, 1.0, 1.0}, seed, options);
  auto estimates = fleet.Run(stream);
  if (stats != nullptr) {
    *stats = fleet.Stats();
  }
  return estimates;
}

// --- Single-lane equivalence -------------------------------------------------------------

TEST(ShardedStreaming, SingleLaneMatchesStreamingEstimatorBitExactly) {
  const Fixture f;
  for (const bool window_local : {false, true}) {
    StreamingEstimatorOptions stream_options = ShortStemOptions();
    stream_options.window_local_arrival_rate = window_local;

    LogReplayStream plain_stream(f.truth, f.obs);
    StreamingEstimator plain({1.0, 1.0, 1.0}, 99, stream_options);
    const auto reference = plain.Run(plain_stream);
    ASSERT_GE(reference.size(), 3u);

    ShardedStreamingOptions fleet_options;
    fleet_options.lanes = 1;
    fleet_options.stream = stream_options;
    const auto pooled = RunFleet(f, fleet_options, 99);
    ExpectEstimatesIdentical(reference, pooled);
  }
}

TEST(ShardedStreaming, SingleLaneEquivalenceHoldsUnderShardedSweepsAndPipelining) {
  const Fixture f;
  StreamingEstimatorOptions stream_options = ShortStemOptions();
  stream_options.stem.sharded_sweeps = true;
  stream_options.stem.sharded.shards = 2;
  stream_options.stem.sharded.threads = 2;
  stream_options.pipeline = true;

  LogReplayStream plain_stream(f.truth, f.obs);
  StreamingEstimator plain({1.0, 1.0, 1.0}, 5, stream_options);
  const auto reference = plain.Run(plain_stream);

  ShardedStreamingOptions fleet_options;
  fleet_options.lanes = 1;
  fleet_options.stream = stream_options;
  const auto pooled = RunFleet(f, fleet_options, 5);
  ExpectEstimatesIdentical(reference, pooled);
}

// --- Fixed-K determinism across every execution arrangement ------------------------------

TEST(ShardedStreaming, PooledEstimatesBitIdenticalAcrossThreadsAndPipelining) {
  // The acceptance grid: K in {1,2,4} lanes x {1,2,4} sharded-sweep threads per lane x
  // pipelining on/off. For each K the pooled sequence must be bit-identical across the
  // whole (threads, pipelining) sub-grid; only wall-clock may change.
  const Fixture f;
  for (const std::size_t lanes : {1u, 2u, 4u}) {
    std::vector<std::vector<WindowEstimate>> runs;
    for (const std::size_t threads : {1u, 2u, 4u}) {
      for (const bool pipeline : {false, true}) {
        ShardedStreamingOptions options;
        options.lanes = lanes;
        options.stream = ShortStemOptions();
        options.stream.stem.sharded_sweeps = true;
        options.stream.stem.sharded.shards = 2;
        options.stream.stem.sharded.threads = threads;
        options.stream.pipeline = pipeline;
        runs.push_back(RunFleet(f, options, 42));
      }
    }
    ASSERT_GE(runs.front().size(), 3u) << "lanes=" << lanes;
    for (std::size_t i = 1; i < runs.size(); ++i) {
      ExpectEstimatesIdentical(runs.front(), runs[i]);
    }
  }
}

TEST(ShardedStreaming, BackpressureTinyQueueIsBitIdentical) {
  const Fixture f;
  ShardedStreamingOptions options;
  options.lanes = 2;
  options.stream = ShortStemOptions();

  const auto roomy = RunFleet(f, options, 7);
  options.lane_queue_capacity = 2;
  options.router_batch = 1;
  FleetStats stats;
  const auto cramped = RunFleet(f, options, 7, &stats);
  ExpectEstimatesIdentical(roomy, cramped);
  for (const LaneStats& lane : stats.lane) {
    EXPECT_LE(lane.peak_queue_depth, 2u);
  }
  // A batch larger than the queue itself must also be bit-identical (PushMany splits).
  options.lane_queue_capacity = 4;
  options.router_batch = 64;
  const auto oversized_batch = RunFleet(f, options, 7);
  ExpectEstimatesIdentical(roomy, oversized_batch);
}

// --- Cross-K contracts -------------------------------------------------------------------

TEST(ShardedStreaming, WindowSpansCountsAndIndicesIdenticalAcrossLaneCounts) {
  // The span tracker runs on the global stream, so window boundaries are a pure function
  // of the trace and the options — bit-identical for ANY lane count.
  const Fixture f;
  std::vector<std::vector<WindowEstimate>> runs;
  for (const std::size_t lanes : {1u, 2u, 4u}) {
    ShardedStreamingOptions options;
    options.lanes = lanes;
    options.stream = ShortStemOptions();
    runs.push_back(RunFleet(f, options, 11));
  }
  ASSERT_GE(runs.front().size(), 3u);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    ASSERT_EQ(runs.front().size(), runs[i].size());
    for (std::size_t w = 0; w < runs.front().size(); ++w) {
      EXPECT_EQ(runs.front()[w].t0, runs[i][w].t0);
      EXPECT_EQ(runs.front()[w].t1, runs[i][w].t1);
      EXPECT_EQ(runs.front()[w].tasks, runs[i][w].tasks);
      EXPECT_EQ(runs.front()[w].merged_tail_tasks, runs[i][w].merged_tail_tasks);
    }
  }
}

TEST(ShardedStreaming, PooledRatesStatisticallyConsistentAcrossLaneCounts) {
  // Different K fit different hash-thinned sub-streams, so pooled fits are not bit-equal
  // across K — but they estimate the same network and must agree on a well-observed
  // trace. The decomposition is accurate in light traffic and biases service estimates
  // up as utilization grows (a lane's sub-log attributes cross-lane queueing delay to
  // service; see docs/architecture.md), so this pins the light-traffic regime: rho = 0.1
  // per stage, where waits are ~1% of service.
  QueueingNetwork net = MakeTandemNetwork(4.0, {40.0, 45.0});
  Rng sim_rng(3);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(4.0, 800), sim_rng);
  Fixture f;
  f.truth = truth;
  f.obs = Observation::FullyObserved(truth);

  std::vector<std::vector<WindowEstimate>> runs;
  for (const std::size_t lanes : {1u, 2u, 4u}) {
    ShardedStreamingOptions options;
    options.lanes = lanes;
    options.stream = ShortStemOptions(50.0);
    options.stream.window_local_arrival_rate = true;
    runs.push_back(RunFleet(f, options, 17));
  }
  ASSERT_GE(runs.front().size(), 2u);
  for (const auto& run : runs) {
    ASSERT_EQ(run.size(), runs.front().size());
    for (std::size_t w = 0; w < run.size(); ++w) {
      // True rates: lambda 4, mu1 40, mu2 45. Window-local anchoring keeps the pooled
      // lambda tracking the true arrival rate for every K.
      EXPECT_NEAR(run[w].rates[0], 4.0, 1.0) << "window " << w;
      EXPECT_NEAR(1.0 / run[w].rates[1], 1.0 / 40.0, 0.006) << "window " << w;
      EXPECT_NEAR(1.0 / run[w].rates[2], 1.0 / 45.0, 0.006) << "window " << w;
      // Cross-K agreement on service rates (disjoint shares of the same windows).
      EXPECT_NEAR(1.0 / run[w].rates[1], 1.0 / runs.front()[w].rates[1], 0.003);
      EXPECT_NEAR(1.0 / run[w].rates[2], 1.0 / runs.front()[w].rates[2], 0.003);
    }
  }
}

// --- Lane coordination -------------------------------------------------------------------

TEST(ShardedStreaming, EmptyLanesNeverStallTheFleet) {
  // Force every record onto lane 0 of a 2-lane fleet: lane 1 is empty in EVERY window
  // and must still answer every close token immediately.
  const Fixture f;
  ShardedStreamingOptions options;
  options.lanes = 2;
  options.stream = ShortStemOptions();
  options.lane_of = [](const TaskRecord&) { return std::size_t{0}; };

  FleetStats stats;
  const auto pooled = RunFleet(f, options, 23, &stats);
  ASSERT_GE(pooled.size(), 3u);
  EXPECT_EQ(stats.lane[1].tasks_routed, 0u);
  EXPECT_GT(stats.lane[1].windows_closed, 0u);
  EXPECT_EQ(stats.lane[1].empty_windows, stats.lane[1].windows_closed);
  EXPECT_EQ(stats.lane[0].tasks_routed, stats.tasks_ingested);
  for (const WindowEstimate& estimate : pooled) {
    ASSERT_EQ(estimate.rates.size(), 3u);
    for (const double rate : estimate.rates) {
      EXPECT_TRUE(std::isfinite(rate));
      EXPECT_GT(rate, 0.0);
    }
  }
  // Determinism with the forced routing.
  const auto again = RunFleet(f, options, 23);
  ExpectEstimatesIdentical(pooled, again);
}

TaskRecord TinyRecord(double entry, double service = 0.01) {
  TaskRecord record;
  record.entry_time = entry;
  TaskVisit visit;
  visit.state = 0;
  visit.queue = 1;
  visit.arrival = entry;
  visit.departure = entry + service;
  record.visits.push_back(visit);
  return record;
}

TEST(ShardedStreaming, LateRecordPoliciesMatchAssemblerSemantics) {
  // A record behind the closed span: dropped (and counted) under kDrop, folded into the
  // open window under kMergeIntoCurrent — with every task accounted for in the pooled
  // windows either way.
  std::vector<TaskRecord> records;
  for (const double t : {1.0, 2.0, 3.0, 11.0, 12.0, 13.0}) {
    records.push_back(TinyRecord(t));
  }
  records.push_back(TinyRecord(21.0));  // closes [10,20) under a 10s window
  records.push_back(TinyRecord(5.0));   // late: its window [0,10) has closed
  records.push_back(TinyRecord(22.0));
  records.push_back(TinyRecord(23.0));

  for (const LateRecordPolicy policy :
       {LateRecordPolicy::kDrop, LateRecordPolicy::kMergeIntoCurrent}) {
    ShardedStreamingOptions options;
    options.lanes = 2;
    options.stream.window.window_duration = 10.0;
    options.stream.window.min_tasks_per_window = 3;
    options.stream.window.late_policy = policy;
    options.stream.stem.iterations = 10;
    options.stream.stem.burn_in = 2;
    options.stream.stem.wait_sweeps = 0;

    qnet_testing::VectorStream stream(records, 2);
    ShardedStreamingEstimator fleet({1.0, 1.0}, 31, options);
    const auto pooled = fleet.Run(stream);
    const FleetStats& stats = fleet.Stats();
    EXPECT_EQ(stats.tasks_ingested, records.size());
    std::size_t pooled_tasks = 0;
    for (const WindowEstimate& estimate : pooled) {
      pooled_tasks += estimate.tasks;
    }
    if (policy == LateRecordPolicy::kDrop) {
      EXPECT_EQ(stats.late_dropped, 1u);
      EXPECT_EQ(pooled_tasks, records.size() - 1);
    } else {
      EXPECT_EQ(stats.late_dropped, 0u);
      EXPECT_EQ(pooled_tasks, records.size());
    }
  }
}

TEST(ShardedStreaming, WindowWithNoFittableLaneFailsLoudly) {
  // Every record visits only queue 1 of a 3-queue network, so every lane's sub-log
  // misses queue 2 and no lane can fit any window — the fleet must fail like the plain
  // estimator does (inside StEM's M-step), not silently emit zero service rates.
  std::vector<TaskRecord> records;
  for (int i = 0; i < 12; ++i) {
    records.push_back(TinyRecord(1.0 + i));
  }
  ShardedStreamingOptions options;
  options.lanes = 2;
  options.stream.window.window_duration = 5.0;
  options.stream.window.min_tasks_per_window = 2;
  options.stream.stem.iterations = 5;
  options.stream.stem.burn_in = 1;
  options.stream.stem.wait_sweeps = 0;
  qnet_testing::VectorStream stream(records, 3);  // queue 2 exists but is never visited
  ShardedStreamingEstimator fleet({1.0, 1.0, 1.0}, 1, options);
  EXPECT_THROW(fleet.Run(stream), Error);
}

TEST(ShardedStreaming, UnfittableWindowsDegradeInsteadOfThrowingUnderFastPath) {
  // The same never-visits-queue-2 stream as WindowWithNoFittableLaneFailsLoudly: under
  // the degrade policy the lanes answer with mean-field fallback fits instead of
  // throwing — queue 2 keeps each lane's warm-chain rate (the init here) and the pooled
  // estimates are flagged degraded.
  std::vector<TaskRecord> records;
  for (int i = 0; i < 12; ++i) {
    records.push_back(TinyRecord(1.0 + i));
  }
  for (const FastPathMode mode : {FastPathMode::kDegrade, FastPathMode::kMeanFieldOnly}) {
    ShardedStreamingOptions options;
    options.lanes = 2;
    options.stream.window.window_duration = 5.0;
    options.stream.window.min_tasks_per_window = 2;
    options.stream.stem.iterations = 5;
    options.stream.stem.burn_in = 1;
    options.stream.stem.wait_sweeps = 0;
    options.stream.fast_path = mode;

    qnet_testing::VectorStream stream(records, 3);
    ShardedStreamingEstimator fleet({1.0, 1.0, 1.0}, 1, options);
    const auto pooled = fleet.Run(stream);
    ASSERT_GE(pooled.size(), 1u);
    for (const WindowEstimate& estimate : pooled) {
      EXPECT_TRUE(estimate.degraded);
      EXPECT_EQ(estimate.fit_iterations, 0u);
      ASSERT_EQ(estimate.rates.size(), 3u);
      EXPECT_GT(estimate.rates[1], 0.0);
      EXPECT_EQ(estimate.rates[2], 1.0);  // warm chain = init; never fitted
    }
    const FleetStats& stats = fleet.Stats();
    EXPECT_EQ(stats.degraded_windows, pooled.size());
    std::size_t lane_degraded = 0;
    for (const LaneStats& lane : stats.lane) {
      lane_degraded += lane.degraded_fits;
      EXPECT_EQ(lane.fit_iterations_total, 0u);
    }
    EXPECT_GE(lane_degraded, pooled.size());
  }
}

TEST(ShardedStreaming, TrailingTailMergeReplacesLastPooledEstimate) {
  // A too-small trailing remainder merges into the previous window and the pooled
  // estimate sequence replaces its last entry, exactly like the plain estimator; the
  // on_window hook sees the windows in order plus the replacement.
  const Fixture f;
  ShardedStreamingOptions options;
  options.lanes = 2;
  // 27s windows over a ~100s trace leave a high-probability small tail.
  options.stream = ShortStemOptions(27.0);
  options.stream.window.min_tasks_per_window = 60;

  std::vector<WindowEstimate> seen;
  options.stream.on_window = [&seen](const WindowEstimate& estimate) {
    seen.push_back(estimate);
  };
  FleetStats stats;
  const auto pooled = RunFleet(f, options, 13, &stats);
  ASSERT_GE(pooled.size(), 2u);

  std::size_t total_tasks = 0;
  for (const WindowEstimate& estimate : pooled) {
    total_tasks += estimate.tasks;
  }
  EXPECT_EQ(total_tasks + stats.tail_dropped,
            static_cast<std::size_t>(f.truth.NumTasks()));
  // Hook calls: one per emitted window, plus one more if the tail was merged.
  const bool merged = pooled.back().merged_tail_tasks > 0;
  EXPECT_EQ(seen.size(), pooled.size() + (merged ? 1u : 0u));
  // The final hook call is the final estimate.
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.back().t0, pooled.back().t0);
  EXPECT_EQ(seen.back().tasks, pooled.back().tasks);
}

TEST(ShardedStreaming, FleetStatsAccountTasksAndWindows) {
  const Fixture f;
  ShardedStreamingOptions options;
  options.lanes = 4;
  options.stream = ShortStemOptions();
  FleetStats stats;
  const auto pooled = RunFleet(f, options, 2, &stats);

  EXPECT_EQ(stats.lanes, 4u);
  EXPECT_EQ(stats.tasks_ingested, static_cast<std::size_t>(f.truth.NumTasks()));
  EXPECT_EQ(stats.windows_estimated, pooled.size());
  EXPECT_GT(stats.tasks_per_second, 0.0);
  std::size_t routed = 0;
  for (const LaneStats& lane : stats.lane) {
    routed += lane.tasks_routed;
    EXPECT_EQ(lane.windows_closed, stats.lane.front().windows_closed);
    EXPECT_GT(lane.peak_queue_depth, 0u);
  }
  EXPECT_EQ(routed, stats.tasks_ingested - stats.late_dropped);
  // The hash spreads a 400-task trace over 4 lanes without collapsing onto one.
  for (const LaneStats& lane : stats.lane) {
    EXPECT_GT(lane.tasks_routed, 40u);
  }
}

// --- Span tracker ------------------------------------------------------------------------

TEST(WindowSpanTracker, MatchesAssemblerDecisionsOnABurstyStream) {
  // Property check: a standalone tracker fed the same entry times as a WindowAssembler
  // produces exactly the windows the assembler closes (spans, counts, emission order),
  // including deferred closes, small-window extension, and the trailing merge.
  WindowAssemblerOptions options;
  options.window_duration = 10.0;
  options.min_tasks_per_window = 3;
  options.allowed_lateness = 2.0;
  options.late_policy = LateRecordPolicy::kMergeIntoCurrent;

  Rng rng(77);
  std::vector<TaskRecord> records;
  double t = 0.0;
  for (int i = 0; i < 300; ++i) {
    // Bursty: occasional long gaps, occasional mild disorder within the lateness bound.
    t += rng.Exponential(rng.Bernoulli(0.1) ? 0.05 : 1.5);
    const double jitter = rng.Bernoulli(0.3) ? -rng.Uniform(0.0, 1.5) : 0.0;
    records.push_back(TinyRecord(std::max(0.0, t + jitter)));
  }

  WindowAssembler assembler(2, options);
  WindowSpanTracker tracker(options);
  std::vector<ClosedWindow> windows;
  std::vector<WindowSpanTracker::SpanDecision> decisions;
  const auto drain = [&] {
    while (assembler.HasClosed()) {
      windows.push_back(assembler.PopClosed());
    }
    while (tracker.HasClosed()) {
      decisions.push_back(tracker.PopClosed());
    }
  };
  for (const TaskRecord& record : records) {
    assembler.Push(record);
    tracker.Push(record.entry_time);
    drain();
  }
  assembler.FinishStream();
  tracker.Finish();
  drain();

  ASSERT_GE(windows.size(), 5u);
  ASSERT_EQ(windows.size(), decisions.size());
  for (std::size_t w = 0; w < windows.size(); ++w) {
    EXPECT_EQ(windows[w].t0, decisions[w].t0) << "window " << w;
    EXPECT_EQ(windows[w].t1, decisions[w].t1) << "window " << w;
    EXPECT_EQ(windows[w].num_tasks, decisions[w].count) << "window " << w;
    EXPECT_EQ(windows[w].merged_tail_tasks, decisions[w].merged_tail_tasks);
    EXPECT_EQ(windows[w].window_index, decisions[w].window_index);
  }
  EXPECT_EQ(assembler.Stats().tail_dropped, tracker.TailDropped());
}

// --- Lane router -------------------------------------------------------------------------

TEST(LaneRouter, HashRoutingIsStableAndCounted) {
  const Fixture f(1.0, 100);
  LaneRouterOptions options;
  options.lanes = 4;
  LaneRouter router(options);
  LaneRouter router_again(options);
  LogReplayStream stream(f.truth, f.obs);
  TaskRecord record;
  std::size_t total = 0;
  while (stream.Next(record)) {
    const std::size_t lane = router.Route(record);
    EXPECT_LT(lane, 4u);
    EXPECT_EQ(lane, router_again.Route(record));
    EXPECT_EQ(lane, TaskLane(TaskHash(record), 4));
    ++total;
  }
  std::size_t counted = 0;
  for (const std::size_t count : router.LaneCounts()) {
    counted += count;
  }
  EXPECT_EQ(counted, total);
}

TEST(LaneRouter, RejectsOutOfRangePartitioner) {
  LaneRouterOptions options;
  options.lanes = 2;
  options.lane_of = [](const TaskRecord&) { return std::size_t{5}; };
  LaneRouter router(options);
  EXPECT_THROW(router.Route(TinyRecord(1.0)), Error);
}

// --- Mean-field fast path across the fleet -----------------------------------------------

TEST(ShardedStreaming, SingleLaneFastPathMatchesStreamingEstimatorBitExactly) {
  // The K = 1 anchor extends to every fast-path mode: a single-lane fleet is the plain
  // estimator, bit for bit.
  const Fixture f;
  for (const FastPathMode mode :
       {FastPathMode::kWarmStart, FastPathMode::kDegrade, FastPathMode::kMeanFieldOnly}) {
    StreamingEstimatorOptions stream_options = ShortStemOptions();
    stream_options.fast_path = mode;
    stream_options.degrade_task_budget = 100;
    stream_options.stem.convergence_tol = 0.05;

    LogReplayStream plain_stream(f.truth, f.obs);
    StreamingEstimator plain({1.0, 1.0, 1.0}, 83, stream_options);
    const auto reference = plain.Run(plain_stream);
    ASSERT_GE(reference.size(), 3u);

    ShardedStreamingOptions fleet_options;
    fleet_options.lanes = 1;
    fleet_options.stream = stream_options;
    const auto pooled = RunFleet(f, fleet_options, 83);
    ExpectEstimatesIdentical(reference, pooled);
  }
}

TEST(ShardedStreaming, FastPathPooledEstimatesBitIdenticalAcrossThreadsAndPipelining) {
  // The fleet's determinism contract holds verbatim in degraded and all-variational
  // modes: for a FIXED lane count, sharded-sweep threads and pipelining never change a
  // bit. Across lane counts the degraded flags still agree, because the degrade trigger
  // is the GLOBAL window task count, not any lane-local share.
  const Fixture f;
  for (const FastPathMode mode : {FastPathMode::kDegrade, FastPathMode::kMeanFieldOnly}) {
    std::vector<std::vector<WindowEstimate>> per_lane_count;
    for (const std::size_t lanes : {1u, 2u, 4u}) {
      std::vector<std::vector<WindowEstimate>> runs;
      for (const std::size_t threads : {1u, 2u}) {
        for (const bool pipeline : {false, true}) {
          ShardedStreamingOptions options;
          options.lanes = lanes;
          options.stream = ShortStemOptions();
          options.stream.fast_path = mode;
          options.stream.degrade_task_budget = 100;
          options.stream.stem.sharded_sweeps = true;
          options.stream.stem.sharded.shards = 2;
          options.stream.stem.sharded.threads = threads;
          options.stream.pipeline = pipeline;
          runs.push_back(RunFleet(f, options, 21));
        }
      }
      ASSERT_GE(runs.front().size(), 3u);
      for (std::size_t i = 1; i < runs.size(); ++i) {
        ExpectEstimatesIdentical(runs.front(), runs[i]);
      }
      per_lane_count.push_back(std::move(runs.front()));
    }
    ASSERT_EQ(per_lane_count[0].size(), per_lane_count[1].size());
    ASSERT_EQ(per_lane_count[0].size(), per_lane_count[2].size());
    std::size_t degraded = 0;
    for (std::size_t w = 0; w < per_lane_count[0].size(); ++w) {
      EXPECT_EQ(per_lane_count[0][w].degraded, per_lane_count[1][w].degraded)
          << "window " << w;
      EXPECT_EQ(per_lane_count[0][w].degraded, per_lane_count[2][w].degraded)
          << "window " << w;
      degraded += per_lane_count[0][w].degraded ? 1 : 0;
    }
    if (mode == FastPathMode::kMeanFieldOnly) {
      EXPECT_EQ(degraded, per_lane_count[0].size());
    } else {
      EXPECT_GT(degraded, 0u);
      EXPECT_LT(degraded, per_lane_count[0].size());
    }
  }
}

// --- Cross-lane bias correction ----------------------------------------------------------

TEST(ShardedStreaming, BiasCorrectionIsANoOpAtSingleLane) {
  // K = 1 pools verbatim (one contributing lane per window), so flipping the correction
  // on must not move a bit — the plain-estimator anchor survives the new option.
  const Fixture f;
  ShardedStreamingOptions options;
  options.lanes = 1;
  options.stream = ShortStemOptions();
  options.stream.window_local_arrival_rate = true;
  const auto plain = RunFleet(f, options, 43);
  options.cross_lane_bias_correction = true;
  const auto corrected = RunFleet(f, options, 43);
  ASSERT_GE(plain.size(), 3u);
  ExpectEstimatesIdentical(plain, corrected);
}

TEST(ShardedStreaming, BiasCorrectionRecoversSingleLaneServiceAtHighUtilization) {
  // The accuracy claim behind the correction. At rho = 0.7 a lane's hash-thinned
  // sub-stream hides most queueing: waits caused by OTHER lanes' tasks are attributed to
  // service, so the uncorrected K = 4 pooled service time lands at a multiple of the
  // true one. The response invariant S_b + W_b = R survives the thinning, and the
  // corrected pool re-inverts it to match the single-lane fleet closely.
  const double lambda = 2.0;
  const double rho = 0.7;
  const QueueingNetwork net = MakeSingleQueueNetwork(lambda, lambda / rho);
  Rng rng(71);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(lambda, 1200), rng);
  const Observation obs = Observation::FullyObserved(truth);

  const auto run = [&](std::size_t lanes, bool correct) {
    ShardedStreamingOptions options;
    options.lanes = lanes;
    options.stream = ShortStemOptions(60.0);
    options.stream.window_local_arrival_rate = true;
    options.cross_lane_bias_correction = correct;
    LogReplayStream stream(truth, obs);
    ShardedStreamingEstimator fleet({1.0, 1.0}, 53, options);
    return fleet.Run(stream);
  };
  const auto mean_service = [](const std::vector<WindowEstimate>& estimates) {
    double sum = 0.0;
    for (const WindowEstimate& estimate : estimates) {
      sum += 1.0 / estimate.rates[1];
    }
    return sum / static_cast<double>(estimates.size());
  };

  const auto reference = run(1, false);
  ASSERT_GE(reference.size(), 5u);
  const double ref_service = mean_service(reference);
  EXPECT_NEAR(ref_service, rho / lambda, 0.15 * rho / lambda);  // sanity: near 1/mu

  const double corrected = mean_service(run(4, true));
  const double uncorrected = mean_service(run(4, false));

  EXPECT_NEAR(corrected, ref_service, 0.10 * ref_service);
  // The uncorrected pool is not just slightly worse — it misses by a multiple.
  EXPECT_GT(uncorrected, 1.5 * ref_service);
  EXPECT_GT(std::abs(uncorrected - ref_service), 3.0 * std::abs(corrected - ref_service));
}

// --- Window-estimate CSV -----------------------------------------------------------------

TEST(WindowCsv, RoundTripsBitExactly) {
  const Fixture f;
  ShardedStreamingOptions options;
  options.lanes = 2;
  options.stream = ShortStemOptions();
  options.stream.window_local_arrival_rate = true;
  const auto pooled = RunFleet(f, options, 3);
  ASSERT_GE(pooled.size(), 2u);

  std::stringstream ss;
  WriteWindowEstimates(ss, pooled, 3);
  const auto parsed = ReadWindowEstimates(ss);
  ExpectEstimatesIdentical(pooled, parsed);
}

TEST(WindowCsv, RoundTripsDegradedFlagsAndFitIterations) {
  // Degraded-mode output survives persistence: the flag and the iteration count are
  // first-class columns, not derived.
  const Fixture f;
  ShardedStreamingOptions options;
  options.lanes = 2;
  options.stream = ShortStemOptions();
  options.stream.fast_path = FastPathMode::kDegrade;
  options.stream.degrade_task_budget = 100;
  const auto pooled = RunFleet(f, options, 9);
  ASSERT_GE(pooled.size(), 2u);
  bool any_degraded = false;
  bool any_sampled = false;
  for (const WindowEstimate& estimate : pooled) {
    any_degraded = any_degraded || estimate.degraded;
    any_sampled = any_sampled || !estimate.degraded;
  }
  EXPECT_TRUE(any_degraded);
  EXPECT_TRUE(any_sampled);

  std::stringstream ss;
  WriteWindowEstimates(ss, pooled, 3);
  ExpectEstimatesIdentical(pooled, ReadWindowEstimates(ss));
}

TEST(WindowCsv, RejectsCorruptInput) {
  std::stringstream missing_header("1,2,3\n");
  EXPECT_THROW(ReadWindowEstimates(missing_header), Error);

  // A pre-fast-path row (no degraded/fit_iterations columns) no longer field-counts.
  std::stringstream truncated("# queues=2\n# windows=2\n0,10,5,0,0,1.5,2.5\n");
  EXPECT_THROW(ReadWindowEstimates(truncated), Error);

  std::stringstream bad_row("# queues=2\n# windows=1\n0,10,5\n");
  EXPECT_THROW(ReadWindowEstimates(bad_row), Error);

  std::stringstream negative_iters(
      "# queues=2\n# windows=1\n0,10,5,0,0,0,-3,1.5,2.5\n");
  EXPECT_THROW(ReadWindowEstimates(negative_iters), Error);

  std::stringstream bad_degraded(
      "# queues=2\n# windows=1\n0,10,5,0,0,x,0,1.5,2.5\n");
  EXPECT_THROW(ReadWindowEstimates(bad_degraded), Error);
}

TEST(WindowCsv, AlertMasksRoundTripAndLegacyRowsReadAsZero) {
  // Current rows carry the alerts bitmask as an eighth metadata column; pre-alerts
  // rows (7 metadata fields) still parse, reading alerts = 0. The column count alone
  // identifies the format generation (counts are pairwise distinct for Q >= 2).
  const Fixture f;
  ShardedStreamingOptions options;
  options.lanes = 2;
  options.stream = ShortStemOptions();
  auto pooled = RunFleet(f, options, 3);
  ASSERT_GE(pooled.size(), 2u);
  pooled[0].alerts = 0x5;  // rate shift + bottleneck migration
  pooled[1].alerts = 0x2;  // service drift

  std::stringstream ss;
  WriteWindowEstimates(ss, pooled, 3);
  const auto parsed = ReadWindowEstimates(ss);
  ExpectEstimatesIdentical(pooled, parsed);
  EXPECT_EQ(parsed[0].alerts, 0x5u);
  EXPECT_EQ(parsed[1].alerts, 0x2u);

  std::stringstream legacy(
      "# queues=2\n# windows=2\n"
      "0,10,5,0,1,0,4,1.5,2.5\n"             // 7 meta + Q rates
      "10,20,6,0,1,0,4,1.5,2.5,0.1,0.2\n");  // 7 meta + Q rates + Q waits
  const auto legacy_parsed = ReadWindowEstimates(legacy);
  ASSERT_EQ(legacy_parsed.size(), 2u);
  EXPECT_EQ(legacy_parsed[0].alerts, 0u);
  EXPECT_EQ(legacy_parsed[1].alerts, 0u);
  EXPECT_EQ(legacy_parsed[0].rates[1], 2.5);
  ASSERT_EQ(legacy_parsed[1].mean_wait.size(), 2u);
  EXPECT_EQ(legacy_parsed[1].mean_wait[1], 0.2);
}

TEST(WindowCsv, RejectsCorruptAlertsMask) {
  std::stringstream negative(
      "# queues=2\n# windows=1\n0,10,5,0,1,0,4,-1,1.5,2.5\n");
  EXPECT_THROW(ReadWindowEstimates(negative), Error);

  std::stringstream overflow(
      "# queues=2\n# windows=1\n0,10,5,0,1,0,4,4294967296,1.5,2.5\n");
  EXPECT_THROW(ReadWindowEstimates(overflow), Error);

  std::stringstream garbage(
      "# queues=2\n# windows=1\n0,10,5,0,1,0,4,x,1.5,2.5\n");
  EXPECT_THROW(ReadWindowEstimates(garbage), Error);
}

}  // namespace
}  // namespace qnet
