// Unit tests for log-space arithmetic — the numerical foundation of the Gibbs conditionals.

#include "qnet/support/logspace.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "qnet/support/check.h"

namespace qnet {
namespace {

// Numeric reference: trapezoid integration of exp(alpha + beta x) over [lo, hi].
double NumericLogIntegral(double alpha, double beta, double lo, double hi, int steps = 200000) {
  const double h = (hi - lo) / steps;
  // Integrate exp(alpha + beta x - peak) to stay in range, then add peak back.
  const double peak = alpha + beta * (beta > 0 ? hi : lo);
  double sum = 0.0;
  for (int i = 0; i <= steps; ++i) {
    const double x = lo + i * h;
    const double w = (i == 0 || i == steps) ? 0.5 : 1.0;
    sum += w * std::exp(alpha + beta * x - peak);
  }
  return peak + std::log(sum * h);
}

TEST(LogAdd, BasicIdentities) {
  EXPECT_NEAR(LogAdd(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  EXPECT_NEAR(LogAdd(0.0, 0.0), std::log(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(LogAdd(kNegInf, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(LogAdd(1.5, kNegInf), 1.5);
  EXPECT_DOUBLE_EQ(LogAdd(kNegInf, kNegInf), kNegInf);
}

TEST(LogAdd, ExtremeMagnitudeGap) {
  // exp(-1000) is invisible next to exp(1000); the result must not overflow.
  EXPECT_DOUBLE_EQ(LogAdd(1000.0, -1000.0), 1000.0);
  EXPECT_NEAR(LogAdd(700.0, 700.0), 700.0 + std::log(2.0), 1e-12);
}

TEST(LogSub, BasicIdentities) {
  EXPECT_NEAR(LogSub(std::log(5.0), std::log(3.0)), std::log(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(LogSub(2.0, kNegInf), 2.0);
  EXPECT_DOUBLE_EQ(LogSub(2.0, 2.0), kNegInf);
  EXPECT_THROW(LogSub(1.0, 2.0), Error);
}

TEST(LogSumExp, MatchesPairwise) {
  const std::vector<double> xs = {0.1, -3.0, 2.5, 1.0};
  double pair = kNegInf;
  for (double x : xs) {
    pair = LogAdd(pair, x);
  }
  EXPECT_NEAR(LogSumExp(xs), pair, 1e-12);
}

TEST(LogSumExp, EmptyAndAllNegInf) {
  EXPECT_DOUBLE_EQ(LogSumExp(std::vector<double>{}), kNegInf);
  EXPECT_DOUBLE_EQ(LogSumExp(std::vector<double>{kNegInf, kNegInf}), kNegInf);
}

TEST(Log1mExp, MatchesDirectComputation) {
  for (double u : {1e-3, 0.1, 0.5, 0.69, 0.70, 1.0, 5.0, 40.0}) {
    const double direct = std::log(1.0 - std::exp(-u));
    EXPECT_NEAR(Log1mExp(u), direct, 1e-10) << "u=" << u;
  }
}

TEST(Log1mExp, AccurateForTinyArguments) {
  // Direct log(1 - exp(-u)) loses precision to cancellation here; compare against the
  // series log(u) - u/2 + u^2/24 - ...
  for (double u : {1e-10, 1e-8, 1e-6}) {
    const double series = std::log(u) - u / 2.0 + u * u / 24.0;
    EXPECT_NEAR(Log1mExp(u), series, 1e-12 * std::abs(series)) << "u=" << u;
  }
}

TEST(LogIntegralExpLinear, MatchesNumericIntegration) {
  struct Case {
    double alpha, beta, lo, hi;
  };
  const std::vector<Case> cases = {
      {0.0, 0.0, 1.0, 2.0},    {0.0, 1.0, 0.0, 1.0},     {2.0, -3.0, 0.5, 4.0},
      {-5.0, 0.5, 10.0, 11.0}, {1.0, 1e-14, 3.0, 7.0},   {0.0, -0.25, 0.0, 100.0},
      {3.0, 12.0, 0.0, 2.0},   {-2.0, -7.5, 1.0, 1.001},
  };
  for (const auto& c : cases) {
    EXPECT_NEAR(LogIntegralExpLinear(c.alpha, c.beta, c.lo, c.hi),
                NumericLogIntegral(c.alpha, c.beta, c.lo, c.hi), 1e-6)
        << "alpha=" << c.alpha << " beta=" << c.beta << " lo=" << c.lo << " hi=" << c.hi;
  }
}

TEST(LogIntegralExpLinear, HugeExponentsStayFinite) {
  // alpha + beta*x around +-20000: naive exponentiation would overflow.
  const double value = LogIntegralExpLinear(20000.0, -10.0, 1000.0, 2000.0);
  EXPECT_TRUE(std::isfinite(value));
  // Analytic: alpha + beta*lo - log(beta adjustments); mass concentrated at lo.
  EXPECT_NEAR(value, 20000.0 - 10.0 * 1000.0 - std::log(10.0), 1e-9);
}

TEST(LogIntegralExpLinear, SemiInfiniteTail) {
  // Integral of exp(-2x) from 3 to infinity = exp(-6)/2.
  EXPECT_NEAR(LogIntegralExpLinear(0.0, -2.0, 3.0, kPosInf), -6.0 - std::log(2.0), 1e-12);
  EXPECT_THROW(LogIntegralExpLinear(0.0, 1.0, 0.0, kPosInf), Error);
}

TEST(LogIntegralExpLinear, EmptyInterval) {
  EXPECT_DOUBLE_EQ(LogIntegralExpLinear(1.0, 1.0, 2.0, 2.0), kNegInf);
}

TEST(SampleExpLinear, EndpointsAndMonotonicity) {
  for (double beta : {-4.0, -1e-15, 0.0, 2.5, 50.0}) {
    const double lo = 1.0;
    const double hi = 3.0;
    EXPECT_NEAR(SampleExpLinear(beta, lo, hi, 0.0), lo, 1e-9) << "beta=" << beta;
    EXPECT_NEAR(SampleExpLinear(beta, lo, hi, 1.0), hi, 1e-6) << "beta=" << beta;
    double prev = lo;
    for (double v = 0.1; v < 1.0; v += 0.1) {
      const double x = SampleExpLinear(beta, lo, hi, v);
      EXPECT_GE(x, prev) << "beta=" << beta << " v=" << v;
      EXPECT_LE(x, hi + 1e-12);
      prev = x;
    }
  }
}

TEST(SampleExpLinear, InverseCdfIdentity) {
  // For density ∝ exp(beta x) on [lo, hi], CDF(SampleExpLinear(v)) == v.
  for (double beta : {-3.0, -0.5, 0.5, 3.0}) {
    const double lo = 0.5;
    const double hi = 2.5;
    const double log_total = LogIntegralExpLinear(0.0, beta, lo, hi);
    for (double v : {0.05, 0.3, 0.5, 0.77, 0.95}) {
      const double x = SampleExpLinear(beta, lo, hi, v);
      const double cdf = std::exp(LogIntegralExpLinear(0.0, beta, lo, x) - log_total);
      EXPECT_NEAR(cdf, v, 1e-9) << "beta=" << beta << " v=" << v;
    }
  }
}

TEST(SampleExpLinear, SemiInfiniteMatchesExponential) {
  // beta < 0 on [lo, inf): X - lo ~ Exp(-beta).
  const double x = SampleExpLinear(-2.0, 1.0, kPosInf, 0.5);
  EXPECT_NEAR(x, 1.0 + std::log(2.0) / 2.0, 1e-12);
}

TEST(SampleExpLinear, LargePositiveBetaConcentratesAtUpperEnd) {
  const double x = SampleExpLinear(200.0, 0.0, 1.0, 0.5);
  EXPECT_GT(x, 0.99);
  EXPECT_LE(x, 1.0);
}

}  // namespace
}  // namespace qnet
