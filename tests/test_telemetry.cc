// Telemetry layer: registry/histogram/export units, span-ring behavior, and the
// pipeline-level contracts the instrumentation must uphold:
//   (i)  telemetry is a one-way tap — estimates are bit-identical at every trace level
//        (including fully disabled), for the plain estimator and the fleet;
//   (ii) the stats structs are views over the registry — a plain-estimator run's
//        StreamingStats matches the registry counter deltas field for field, and a
//        single-lane fleet's FleetStats matches the plain estimator's StreamingStats;
//   (iii) the ingest-side counters (late_dropped / tail_dropped / degraded /
//        peak_queue_depth) count exactly once across lateness policies, degrade modes,
//        and forced backpressure.
// Timing-surface assertions (histogram Record, span capture) are compiled out together
// with the instrumentation under -DQNET_TELEMETRY=OFF; everything else runs in both
// build modes.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support/vector_stream.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/shard/sharded_streaming.h"
#include "qnet/sim/simulator.h"
#include "qnet/stream/replay_stream.h"
#include "qnet/stream/streaming_estimator.h"
#include "qnet/stream/window_assembler.h"
#include "qnet/support/check.h"
#include "qnet/support/rng.h"
#include "qnet/telemetry/export.h"
#include "qnet/telemetry/metrics.h"
#include "qnet/telemetry/timeline.h"

namespace qnet {
namespace {

using qnet_testing::VectorStream;

// --- registry ----------------------------------------------------------------------------

TEST(MetricRegistry, RegistrationDeduplicatesByName) {
  MetricRegistry registry;
  Counter* a = registry.AddCounter("qnet_test_a_total");
  Counter* again = registry.AddCounter("qnet_test_a_total");
  EXPECT_EQ(a, again);
  EXPECT_EQ(registry.NumCounters(), 1u);
  Gauge* g = registry.AddGauge("qnet_test_g");
  EXPECT_EQ(g, registry.AddGauge("qnet_test_g"));
  EXPECT_EQ(registry.NumGauges(), 1u);
  Histogram* h = registry.AddHistogram("qnet_test_h_ns");
  EXPECT_EQ(h, registry.AddHistogram("qnet_test_h_ns"));
  EXPECT_EQ(registry.NumHistograms(), 1u);
}

TEST(MetricRegistry, CapacityExhaustionThrowsAtRegistration) {
  MetricRegistryCapacity capacity;
  capacity.counters = 2;
  capacity.gauges = 1;
  capacity.histograms = 1;
  MetricRegistry registry(capacity);
  registry.AddCounter("a");
  registry.AddCounter("b");
  registry.AddCounter("a");  // dedup does not consume a slot
  EXPECT_THROW(registry.AddCounter("c"), Error);
  registry.AddGauge("g");
  EXPECT_THROW(registry.AddGauge("g2"), Error);
  registry.AddHistogram("h");
  EXPECT_THROW(registry.AddHistogram("h2"), Error);
}

TEST(MetricRegistry, SnapshotIsNameSortedWithCurrentValues) {
  MetricRegistry registry;
  registry.AddCounter("zeta")->Add(3);
  registry.AddCounter("alpha")->Increment();
  registry.AddGauge("mid")->Set(2.5);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[0].value, 1u);
  EXPECT_EQ(snap.counters[1].name, "zeta");
  EXPECT_EQ(snap.counters[1].value, 3u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 2.5);
  ASSERT_NE(snap.FindCounter("zeta"), nullptr);
  EXPECT_EQ(snap.FindCounter("zeta")->value, 3u);
  EXPECT_EQ(snap.FindCounter("missing"), nullptr);
}

TEST(Gauge, SetMaxIsAHighWaterMark) {
  MetricRegistry registry;
  Gauge* g = registry.AddGauge("peak");
  g->SetMax(4.0);
  g->SetMax(2.0);  // lower: no effect
  EXPECT_EQ(g->Value(), 4.0);
  g->SetMax(9.0);
  EXPECT_EQ(g->Value(), 9.0);
}

// --- histogram ---------------------------------------------------------------------------

TEST(Histogram, SmallValuesLandInExactBuckets) {
  // The low range is exact: one bucket per value below 2^(kSubBits + 1).
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(Histogram::BucketLowerBound(Histogram::BucketIndex(v)), v) << "v=" << v;
    EXPECT_EQ(Histogram::BucketWidth(Histogram::BucketIndex(v)), 1u) << "v=" << v;
  }
}

TEST(Histogram, BucketBoundsAreMonotoneAndCoverTheValue) {
  for (const std::uint64_t v :
       {0ull, 1ull, 15ull, 16ull, 17ull, 1000ull, 123456789ull, (1ull << 40) + 7}) {
    const std::size_t b = Histogram::BucketIndex(v);
    const std::uint64_t lower = Histogram::BucketLowerBound(b);
    const std::uint64_t width = Histogram::BucketWidth(b);
    EXPECT_GE(v, lower) << "v=" << v;
    EXPECT_LT(v - lower, width) << "v=" << v;
    if (b > 0) {
      EXPECT_EQ(Histogram::BucketLowerBound(b - 1) + Histogram::BucketWidth(b - 1), lower);
    }
  }
}

#if QNET_TELEMETRY
TEST(Histogram, RecordedQuantilesTrackTheSample) {
  MetricRegistry registry;
  Histogram* h = registry.AddHistogram("latency_ns");
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    h->Record(v);
  }
  const MetricsSnapshot snap = registry.Snapshot();
  const HistogramSample* sample = snap.FindHistogram("latency_ns");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, 1000u);
  EXPECT_EQ(sample->sum, 500500u);
  EXPECT_EQ(sample->max, 1000u);
  // Log buckets are ~12.5% wide at kSubBits=3; the midpoint estimate stays within one
  // bucket of the true quantile.
  EXPECT_NEAR(sample->Quantile(0.5), 500.0, 500.0 * 0.15);
  EXPECT_NEAR(sample->Quantile(0.95), 950.0, 950.0 * 0.15);
  // The top bucket answers with the exact observed max.
  EXPECT_EQ(sample->Quantile(1.0), 1000.0);
}
#endif  // QNET_TELEMETRY

// --- exporters ---------------------------------------------------------------------------

MetricsSnapshot MakeExportSnapshot() {
  MetricRegistry registry;
  registry.AddCounter("qnet_demo_events_total")->Add(7);
  registry.AddGauge("qnet_demo_peak")->Set(3.0);
  Histogram* h = registry.AddHistogram("qnet_demo_latency_ns");
#if QNET_TELEMETRY
  h->Record(5);
  h->Record(100);
#else
  (void)h;
#endif
  return registry.Snapshot();
}

TEST(Export, PrometheusTextExposition) {
  const std::string text = ToPrometheusText(MakeExportSnapshot());
  EXPECT_NE(text.find("# TYPE qnet_demo_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("qnet_demo_events_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE qnet_demo_peak gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE qnet_demo_latency_ns histogram"), std::string::npos);
#if QNET_TELEMETRY
  // Cumulative buckets terminated by +Inf carrying the total count.
  EXPECT_NE(text.find("qnet_demo_latency_ns_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("qnet_demo_latency_ns_count 2"), std::string::npos);
  EXPECT_NE(text.find("qnet_demo_latency_ns_sum 105"), std::string::npos);
#endif
}

TEST(Export, JsonIsStableOrderedAndStructured) {
  const std::string json = ToJson(MakeExportSnapshot());
  const std::size_t counters = json.find("\"counters\"");
  const std::size_t gauges = json.find("\"gauges\"");
  const std::size_t histograms = json.find("\"histograms\"");
  ASSERT_NE(counters, std::string::npos);
  ASSERT_NE(gauges, std::string::npos);
  ASSERT_NE(histograms, std::string::npos);
  EXPECT_LT(counters, gauges);
  EXPECT_LT(gauges, histograms);
  EXPECT_NE(json.find("\"qnet_demo_events_total\": 7"), std::string::npos);
  // Same snapshot twice -> byte-identical export (stable ordering).
  EXPECT_EQ(json, ToJson(MakeExportSnapshot()));
}

// --- timeline ----------------------------------------------------------------------------

#if QNET_TELEMETRY
struct TraceLevelGuard {
  int saved = Timeline::Level();
  ~TraceLevelGuard() { Timeline::SetLevel(saved); }
};

TEST(Timeline, LevelGatesStagesByTaxonomy) {
  TraceLevelGuard guard;
  Timeline::SetLevel(1);
  EXPECT_TRUE(Timeline::StageEnabled(SpanStage::kEmit));
  EXPECT_FALSE(Timeline::StageEnabled(SpanStage::kLanePush));   // level 2
  EXPECT_FALSE(Timeline::StageEnabled(SpanStage::kSweepTile));  // level 3
  Timeline::SetLevel(2);
  EXPECT_TRUE(Timeline::StageEnabled(SpanStage::kLanePush));
  EXPECT_FALSE(Timeline::StageEnabled(SpanStage::kSweepTile));
  Timeline::SetLevel(3);
  EXPECT_TRUE(Timeline::StageEnabled(SpanStage::kSweepTile));
  Timeline::SetLevel(0);
  EXPECT_FALSE(Timeline::StageEnabled(SpanStage::kEmit));
}

TEST(Timeline, RingKeepsTheMostRecentSpansOnWrap) {
  TraceLevelGuard guard;
  Timeline::SetLevel(1);
  Timeline::ClearSpans();
  const std::size_t total = Timeline::kRingCapacity + 100;
  for (std::size_t i = 0; i < total; ++i) {
    Timeline::RecordSpan(SpanStage::kEmit, i, i + 1);
  }
  const auto threads = Timeline::CollectSpans();
  // Exactly one ring (this thread) holds spans; wrap keeps the newest kRingCapacity.
  std::uint64_t newest = 0;
  std::size_t captured = 0;
  for (const auto& t : threads) {
    for (const SpanRecord& s : t.spans) {
      EXPECT_EQ(s.stage, SpanStage::kEmit);
      newest = std::max(newest, s.start_nanos);
      ++captured;
    }
  }
  EXPECT_EQ(captured, Timeline::kRingCapacity);
  EXPECT_EQ(newest, static_cast<std::uint64_t>(total - 1));
  Timeline::ClearSpans();
}

TEST(Timeline, ScopedSpanCapturesAndExportsAsChromeTrace) {
  TraceLevelGuard guard;
  Timeline::SetLevel(1);
  Timeline::ClearSpans();
  { ScopedSpan span(SpanStage::kStemFit); }
  { ScopedSpan skipped(SpanStage::kSweepTile); }  // level 3: not captured at level 1
  const auto threads = Timeline::CollectSpans();
  std::size_t stem_spans = 0;
  std::size_t tile_spans = 0;
  for (const auto& t : threads) {
    for (const SpanRecord& s : t.spans) {
      stem_spans += s.stage == SpanStage::kStemFit ? 1 : 0;
      tile_spans += s.stage == SpanStage::kSweepTile ? 1 : 0;
      EXPECT_GE(s.end_nanos, s.start_nanos);
    }
  }
  EXPECT_EQ(stem_spans, 1u);
  EXPECT_EQ(tile_spans, 0u);
  const std::string trace = ToChromeTrace(threads);
  EXPECT_EQ(trace.front(), '{');  // {"traceEvents":[...]} — the Perfetto-loadable shape
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"stem_fit\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  Timeline::ClearSpans();
}

TEST(Timeline, StageSummaryTableListsRecordedStages) {
  { ScopedSpan span(SpanStage::kMeanFieldFit); }
  const std::string table = StageSummaryTable(MetricRegistry::Global().Snapshot());
  EXPECT_NE(table.find("stage"), std::string::npos);
  EXPECT_NE(table.find("p95_us"), std::string::npos);
  EXPECT_NE(table.find("meanfield_fit"), std::string::npos);
}
#endif  // QNET_TELEMETRY

// --- pipeline contracts ------------------------------------------------------------------

struct Fixture {
  EventLog truth;
  Observation obs;

  Fixture(double fraction = 0.5, std::size_t tasks = 400, std::uint64_t seed = 7)
      : truth(MakeLog(tasks, seed)), obs(MakeObs(truth, fraction, seed)) {}

  static EventLog MakeLog(std::size_t tasks, std::uint64_t seed) {
    const QueueingNetwork net = MakeTandemNetwork(4.0, {8.0, 9.0});
    Rng rng(seed);
    return SimulateWorkload(net, PoissonArrivals(4.0, tasks), rng);
  }
  static Observation MakeObs(const EventLog& log, double fraction, std::uint64_t seed) {
    Rng rng(seed + 1);
    TaskSamplingScheme scheme;
    scheme.fraction = fraction;
    return scheme.Apply(log, rng);
  }
};

StreamingEstimatorOptions ShortStemOptions(double window_duration = 25.0) {
  StreamingEstimatorOptions options;
  options.window.window_duration = window_duration;
  options.stem.iterations = 30;
  options.stem.burn_in = 10;
  options.stem.wait_sweeps = 5;
  return options;
}

void ExpectEstimatesIdentical(const std::vector<WindowEstimate>& a,
                              const std::vector<WindowEstimate>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t w = 0; w < a.size(); ++w) {
    EXPECT_EQ(a[w].t0, b[w].t0) << "window " << w;
    EXPECT_EQ(a[w].t1, b[w].t1) << "window " << w;
    EXPECT_EQ(a[w].tasks, b[w].tasks) << "window " << w;
    EXPECT_EQ(a[w].degraded, b[w].degraded) << "window " << w;
    EXPECT_EQ(a[w].fit_iterations, b[w].fit_iterations) << "window " << w;
    ASSERT_EQ(a[w].rates.size(), b[w].rates.size());
    for (std::size_t q = 0; q < a[w].rates.size(); ++q) {
      EXPECT_EQ(a[w].rates[q], b[w].rates[q]) << "window " << w << " q=" << q;
    }
    ASSERT_EQ(a[w].mean_wait.size(), b[w].mean_wait.size());
    for (std::size_t q = 0; q < a[w].mean_wait.size(); ++q) {
      EXPECT_EQ(a[w].mean_wait[q], b[w].mean_wait[q]) << "window " << w << " q=" << q;
    }
  }
}

std::vector<WindowEstimate> RunPlain(const Fixture& f,
                                     const StreamingEstimatorOptions& options,
                                     std::uint64_t seed,
                                     StreamingStats* stats = nullptr) {
  LogReplayStream stream(f.truth, f.obs);
  StreamingEstimator estimator({1.0, 1.0, 1.0}, seed, options);
  auto estimates = estimator.Run(stream);
  if (stats != nullptr) {
    *stats = estimator.Stats();
  }
  return estimates;
}

std::vector<WindowEstimate> RunFleet(const Fixture& f, const ShardedStreamingOptions& options,
                                     std::uint64_t seed, FleetStats* stats = nullptr) {
  LogReplayStream stream(f.truth, f.obs);
  ShardedStreamingEstimator fleet({1.0, 1.0, 1.0}, seed, options);
  auto estimates = fleet.Run(stream);
  if (stats != nullptr) {
    *stats = fleet.Stats();
  }
  return estimates;
}

#if QNET_TELEMETRY
// The determinism firewall: span capture reads the clock but never feeds anything back
// into sampling, so every trace level — including fully disabled — produces
// bit-identical estimates.
TEST(TelemetryFirewall, PlainEstimatesBitIdenticalAcrossTraceLevels) {
  TraceLevelGuard guard;
  const Fixture f;
  Timeline::SetLevel(0);
  const auto disabled = RunPlain(f, ShortStemOptions(), 99);
  ASSERT_GE(disabled.size(), 3u);
  Timeline::SetLevel(3);  // every stage armed, tile spans included
  const auto full = RunPlain(f, ShortStemOptions(), 99);
  Timeline::SetLevel(1);
  const auto normal = RunPlain(f, ShortStemOptions(), 99);
  ExpectEstimatesIdentical(disabled, full);
  ExpectEstimatesIdentical(disabled, normal);
}

TEST(TelemetryFirewall, FleetEstimatesBitIdenticalAcrossTraceLevels) {
  TraceLevelGuard guard;
  const Fixture f;
  ShardedStreamingOptions options;
  options.lanes = 2;
  options.stream = ShortStemOptions();
  Timeline::SetLevel(0);
  const auto disabled = RunFleet(f, options, 99);
  ASSERT_GE(disabled.size(), 3u);
  Timeline::SetLevel(3);
  const auto full = RunFleet(f, options, 99);
  ExpectEstimatesIdentical(disabled, full);
}
#endif  // QNET_TELEMETRY

// StreamingStats is a view over the registry: a run's stats must equal the global
// counter deltas field for field (the de-duplication contract — one increment site).
TEST(RegistryDerivedStats, PlainRunMatchesCounterDeltas) {
  const Fixture f;
  const StreamCounterBaseline baseline = StreamCounterBaseline::Capture();
  StreamingStats stats;
  RunPlain(f, ShortStemOptions(), 99, &stats);
  EXPECT_EQ(baseline.TasksIngestedDelta(), stats.tasks_ingested);
  EXPECT_EQ(baseline.LateDroppedDelta(), stats.late_dropped);
  EXPECT_EQ(baseline.TailDroppedDelta(), stats.tail_dropped);
  EXPECT_EQ(baseline.WindowsEstimatedDelta(), stats.windows_estimated);
  EXPECT_EQ(baseline.DegradedWindowsDelta(), stats.degraded_windows);
  EXPECT_EQ(baseline.FitIterationsDelta(), stats.fit_iterations_total);
  EXPECT_GT(stats.tasks_ingested, 0u);
  EXPECT_GT(stats.fit_iterations_total, 0u);
}

TEST(RegistryDerivedStats, FleetRunMatchesCounterDeltas) {
  const Fixture f;
  ShardedStreamingOptions options;
  options.lanes = 3;
  options.stream = ShortStemOptions();
  const StreamCounterBaseline baseline = StreamCounterBaseline::Capture();
  FleetStats stats;
  RunFleet(f, options, 99, &stats);
  EXPECT_EQ(baseline.TasksIngestedDelta(), stats.tasks_ingested);
  EXPECT_EQ(baseline.LateDroppedDelta(), stats.late_dropped);
  EXPECT_EQ(baseline.TailDroppedDelta(), stats.tail_dropped);
  EXPECT_EQ(baseline.WindowsEstimatedDelta(), stats.windows_estimated);
  EXPECT_EQ(baseline.DegradedWindowsDelta(), stats.degraded_windows);
  EXPECT_EQ(baseline.FitIterationsDelta(), stats.fit_iterations_total);
}

// Satellite regression: a single-lane fleet's FleetStats must agree with the plain
// estimator's StreamingStats on every shared (non-wall-clock) field — both are views
// over the same tracker/registry counters now, so any divergence is a double count.
TEST(RegistryDerivedStats, SingleLaneFleetStatsMatchPlainEstimatorStats) {
  const Fixture f;
  StreamingStats plain;
  const auto reference = RunPlain(f, ShortStemOptions(), 99, &plain);
  ShardedStreamingOptions options;
  options.lanes = 1;
  options.stream = ShortStemOptions();
  FleetStats fleet;
  const auto pooled = RunFleet(f, options, 99, &fleet);
  ExpectEstimatesIdentical(reference, pooled);
  EXPECT_EQ(fleet.tasks_ingested, plain.tasks_ingested);
  EXPECT_EQ(fleet.windows_estimated, plain.windows_estimated);
  EXPECT_EQ(fleet.late_dropped, plain.late_dropped);
  EXPECT_EQ(fleet.tail_dropped, plain.tail_dropped);
  EXPECT_EQ(fleet.degraded_windows, plain.degraded_windows);
  EXPECT_EQ(fleet.fit_iterations_total, plain.fit_iterations_total);
  ASSERT_EQ(fleet.lane.size(), 1u);
  EXPECT_EQ(fleet.lane[0].tasks_routed,
            plain.tasks_ingested - plain.late_dropped);
  EXPECT_EQ(fleet.lane[0].fit_iterations_total, plain.fit_iterations_total);
  EXPECT_EQ(fleet.lane[0].peak_buffered_tasks, plain.peak_buffered_tasks);
}

// --- lateness / tail-drop counters -------------------------------------------------------

TaskRecord TinyRecord(double entry, double service = 0.01) {
  TaskRecord record;
  record.entry_time = entry;
  TaskVisit visit;
  visit.state = 0;
  visit.queue = 1;
  visit.arrival = entry;
  visit.departure = entry + service;
  record.visits.push_back(visit);
  return record;
}

WindowAssemblerStats AssembleTinyStream(LateRecordPolicy policy,
                                        StreamCounterBaseline* deltas = nullptr) {
  WindowAssemblerOptions options;
  options.window_duration = 10.0;
  options.min_tasks_per_window = 2;
  options.late_policy = policy;
  const StreamCounterBaseline baseline = StreamCounterBaseline::Capture();
  WindowAssembler assembler(2, options);
  // [0,10) closes when 11.0 arrives; the 1.5 record is then late.
  for (const double t : {1.0, 2.0, 3.0, 11.0, 1.5, 12.0, 21.0, 22.0, 31.0}) {
    assembler.Push(TinyRecord(t));
  }
  assembler.FinishStream();
  while (assembler.HasClosed()) {
    (void)assembler.PopClosed();
  }
  if (deltas != nullptr) {
    *deltas = baseline;
  }
  return assembler.Stats();
}

TEST(LatenessCounters, DropPolicyCountsLateRecordsExactlyOnce) {
  StreamCounterBaseline deltas;
  const WindowAssemblerStats stats = AssembleTinyStream(LateRecordPolicy::kDrop, &deltas);
  EXPECT_EQ(stats.tasks_ingested, 9u);
  EXPECT_EQ(stats.late_dropped, 1u);
  EXPECT_EQ(stats.tail_dropped, 0u);
  EXPECT_EQ(deltas.TasksIngestedDelta(), 9u);
  EXPECT_EQ(deltas.LateDroppedDelta(), 1u);
  EXPECT_EQ(deltas.TailDroppedDelta(), 0u);
}

TEST(LatenessCounters, MergePolicyKeepsLateRecords) {
  StreamCounterBaseline deltas;
  const WindowAssemblerStats stats =
      AssembleTinyStream(LateRecordPolicy::kMergeIntoCurrent, &deltas);
  EXPECT_EQ(stats.tasks_ingested, 9u);
  EXPECT_EQ(stats.late_dropped, 0u);
  EXPECT_EQ(deltas.LateDroppedDelta(), 0u);
}

TEST(LatenessCounters, TailDropCountsAnUnsalvageableRemainder) {
  WindowAssemblerOptions options;
  options.window_duration = 10.0;
  options.min_tasks_per_window = 3;
  options.merge_trailing_window = false;  // nothing to merge the remainder into
  const StreamCounterBaseline baseline = StreamCounterBaseline::Capture();
  WindowAssembler assembler(2, options);
  assembler.Push(TinyRecord(1.0));  // a 1-task remainder cannot stand alone
  assembler.FinishStream();
  const WindowAssemblerStats stats = assembler.Stats();
  EXPECT_EQ(stats.tasks_ingested, 1u);
  EXPECT_EQ(stats.tail_dropped, 1u);
  EXPECT_FALSE(assembler.HasClosed());
  EXPECT_EQ(baseline.TailDroppedDelta(), 1u);
}

TEST(LatenessCounters, FleetLatePoliciesMatchPlainEstimatorCounts) {
  // The router runs the same span tracker, so fleet-level drop accounting must match
  // the plain estimator's for the same time-shuffled stream, at any lane count.
  std::vector<TaskRecord> records;
  for (const double t : {1.0, 2.0, 3.0, 4.0, 11.0, 12.0, 2.5, 13.0, 14.0,
                         21.0, 22.0, 23.0, 24.0, 31.0}) {
    records.push_back(TinyRecord(t));
  }
  for (const LateRecordPolicy policy :
       {LateRecordPolicy::kDrop, LateRecordPolicy::kMergeIntoCurrent}) {
    StreamingEstimatorOptions stream_options = ShortStemOptions(10.0);
    stream_options.window.min_tasks_per_window = 2;
    stream_options.window.late_policy = policy;
    stream_options.fast_path = FastPathMode::kMeanFieldOnly;  // keep the fits instant

    VectorStream plain_stream(records, 2);
    StreamingEstimator plain({1.0, 1.0}, 5, stream_options);
    (void)plain.Run(plain_stream);
    const StreamingStats plain_stats = plain.Stats();

    for (const std::size_t lanes : {1u, 2u}) {
      ShardedStreamingOptions fleet_options;
      fleet_options.lanes = lanes;
      fleet_options.stream = stream_options;
      VectorStream fleet_stream(records, 2);
      ShardedStreamingEstimator fleet({1.0, 1.0}, 5, fleet_options);
      (void)fleet.Run(fleet_stream);
      EXPECT_EQ(fleet.Stats().tasks_ingested, plain_stats.tasks_ingested)
          << "lanes=" << lanes;
      EXPECT_EQ(fleet.Stats().late_dropped, plain_stats.late_dropped)
          << "lanes=" << lanes;
      EXPECT_EQ(fleet.Stats().tail_dropped, plain_stats.tail_dropped)
          << "lanes=" << lanes;
    }
    const std::size_t expected_dropped =
        policy == LateRecordPolicy::kDrop ? 1u : 0u;
    EXPECT_EQ(plain_stats.late_dropped, expected_dropped);
  }
}

// --- degraded-fit accounting -------------------------------------------------------------

TEST(DegradeCounters, DegradedFitsConsistentAcrossLaneCounts) {
  const Fixture f;
  StreamingEstimatorOptions stream_options = ShortStemOptions();
  stream_options.fast_path = FastPathMode::kDegrade;
  stream_options.degrade_task_budget = 80;  // ~100 tasks/window: most windows degrade

  std::vector<std::size_t> degraded_windows;
  for (const std::size_t lanes : {1u, 2u, 4u}) {
    ShardedStreamingOptions options;
    options.lanes = lanes;
    options.stream = stream_options;
    FleetStats stats;
    RunFleet(f, options, 99, &stats);
    degraded_windows.push_back(stats.degraded_windows);
    ASSERT_EQ(stats.lane.size(), lanes);
    std::size_t degraded_fits = 0;
    for (const LaneStats& lane : stats.lane) {
      degraded_fits += lane.degraded_fits;
      // Under kDegrade a lane missing a queue answers with a mean-field fallback
      // instead of sitting the window out.
      EXPECT_EQ(lane.skipped_fits, 0u) << "lanes=" << lanes;
    }
    // Every degraded pooled window was produced by at least one degraded lane fit, and
    // a lane can only degrade on windows that exist.
    EXPECT_GE(degraded_fits, stats.degraded_windows) << "lanes=" << lanes;
    EXPECT_LE(degraded_fits, lanes * stats.lane[0].windows_closed) << "lanes=" << lanes;
  }
  // The degrade trigger is the GLOBAL window task count: the same windows degrade at
  // any lane count.
  EXPECT_GT(degraded_windows[0], 0u);
  EXPECT_EQ(degraded_windows[0], degraded_windows[1]);
  EXPECT_EQ(degraded_windows[0], degraded_windows[2]);
}

// --- backpressure ------------------------------------------------------------------------

TEST(BackpressureCounters, PeakQueueDepthPinsAtCapacityWhenRouterBlocks) {
  const Fixture f;
  ShardedStreamingOptions options;
  options.lanes = 1;
  options.lane_queue_capacity = 8;  // tiny queue: the router must outrun the fits
  options.router_batch = 1;
  options.stream = ShortStemOptions();
  FleetStats stats;
  const auto pooled = RunFleet(f, options, 99, &stats);
  ASSERT_GE(pooled.size(), 3u);
  ASSERT_EQ(stats.lane.size(), 1u);
  EXPECT_EQ(stats.lane[0].peak_queue_depth, options.lane_queue_capacity);
  EXPECT_GT(stats.router_blocked_seconds, 0.0);
  // The global gauge mirrors the per-lane high-water mark.
  const MetricsSnapshot snap = MetricRegistry::Global().Snapshot();
  bool found = false;
  for (const GaugeSample& g : snap.gauges) {
    if (g.name == "qnet_stream_peak_queue_depth") {
      EXPECT_GE(g.value, static_cast<double>(options.lane_queue_capacity));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace qnet
