// Tests for the probabilistic routing FSM.

#include "qnet/model/fsm.h"

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "qnet/support/check.h"
#include "qnet/support/logspace.h"
#include "qnet/support/math.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

// Two-state FSM: state A emits queue 1, then moves to B (p=0.4) or finishes (p=0.6);
// state B emits queue 2 or 3 uniformly, then finishes.
Fsm MakeSmallFsm() {
  Fsm fsm(4);
  const int a = fsm.AddState("A");
  const int b = fsm.AddState("B");
  fsm.SetInitialState(a);
  fsm.SetDeterministicEmission(a, 1);
  fsm.SetUniformEmission(b, {2, 3});
  fsm.SetTransition(a, b, 0.4);
  fsm.SetTransition(a, Fsm::kFinalState, 0.6);
  fsm.SetTransition(b, Fsm::kFinalState, 1.0);
  return fsm;
}

TEST(Fsm, ValidatesCleanMachine) {
  Fsm fsm = MakeSmallFsm();
  EXPECT_NO_THROW(fsm.Validate());
  EXPECT_EQ(fsm.NumStates(), 2);
  EXPECT_EQ(fsm.StateName(0), "A");
}

TEST(Fsm, RejectsUnnormalizedRows) {
  Fsm fsm(3);
  const int a = fsm.AddState("A");
  fsm.SetInitialState(a);
  fsm.SetDeterministicEmission(a, 1);
  fsm.SetTransition(a, Fsm::kFinalState, 0.5);  // row sums to 0.5
  EXPECT_THROW(fsm.Validate(), Error);
}

TEST(Fsm, RejectsMissingInitialState) {
  Fsm fsm(3);
  const int a = fsm.AddState("A");
  fsm.SetDeterministicEmission(a, 1);
  fsm.SetTransition(a, Fsm::kFinalState, 1.0);
  EXPECT_THROW(fsm.Validate(), Error);
}

TEST(Fsm, RejectsUnreachableFinalState) {
  Fsm fsm(3);
  const int a = fsm.AddState("A");
  const int b = fsm.AddState("B");
  fsm.SetInitialState(a);
  fsm.SetDeterministicEmission(a, 1);
  fsm.SetDeterministicEmission(b, 2);
  fsm.SetTransition(a, b, 1.0);
  fsm.SetTransition(b, b, 1.0);  // absorbing non-final loop
  EXPECT_THROW(fsm.Validate(), Error);
}

TEST(Fsm, RejectsEmissionToArrivalQueue) {
  Fsm fsm(3);
  const int a = fsm.AddState("A");
  EXPECT_THROW(fsm.SetEmission(a, 0, 1.0), Error);
}

TEST(Fsm, SampleRouteTerminatesAndStartsAtInitial) {
  Fsm fsm = MakeSmallFsm();
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto route = fsm.SampleRoute(rng);
    ASSERT_FALSE(route.empty());
    EXPECT_EQ(route.front().state, 0);
    EXPECT_EQ(route.front().queue, 1);
    ASSERT_LE(route.size(), 2u);
    if (route.size() == 2) {
      EXPECT_EQ(route.back().state, 1);
      EXPECT_TRUE(route.back().queue == 2 || route.back().queue == 3);
    }
  }
}

TEST(Fsm, RouteLengthFrequencyMatchesTransitionProb) {
  Fsm fsm = MakeSmallFsm();
  Rng rng(7);
  int continued = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    continued += fsm.SampleRoute(rng).size() == 2 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(continued) / n, 0.4, 0.01);
}

TEST(Fsm, LogProbRouteMatchesHandComputation) {
  Fsm fsm = MakeSmallFsm();
  // Route A->1 then finish: p = 1.0 (emit) * 0.6 (finish).
  const std::vector<RouteStep> short_route = {{0, 1}};
  EXPECT_NEAR(fsm.LogProbRoute(short_route), std::log(0.6), 1e-12);
  // Route A->1, B->3, finish: 1.0 * 0.4 * 0.5 * 1.0.
  const std::vector<RouteStep> long_route = {{0, 1}, {1, 3}};
  EXPECT_NEAR(fsm.LogProbRoute(long_route), std::log(0.4 * 0.5), 1e-12);
}

TEST(Fsm, LogProbRouteOfImpossibleRouteIsNegInf) {
  Fsm fsm = MakeSmallFsm();
  const std::vector<RouteStep> impossible = {{0, 2}};  // A never emits queue 2
  EXPECT_EQ(fsm.LogProbRoute(impossible), kNegInf);
}

TEST(Fsm, SampleAndLogProbAreConsistent) {
  // Empirical route frequencies should match exp(LogProbRoute).
  Fsm fsm = MakeSmallFsm();
  Rng rng(11);
  std::map<std::string, std::pair<std::vector<RouteStep>, int>> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto route = fsm.SampleRoute(rng);
    std::string key;
    for (const RouteStep& step : route) {
      key += std::to_string(step.state) + ":" + std::to_string(step.queue) + ";";
    }
    auto& entry = counts[key];
    entry.first = route;
    ++entry.second;
  }
  for (const auto& [key, entry] : counts) {
    const double expected = std::exp(fsm.LogProbRoute(entry.first));
    EXPECT_NEAR(static_cast<double>(entry.second) / n, expected, 0.01) << key;
  }
}

TEST(Fsm, WeightedEmissionNormalizes) {
  Fsm fsm(4);
  const int a = fsm.AddState("A");
  fsm.SetInitialState(a);
  fsm.SetWeightedEmission(a, {1, 2, 3}, {2.0, 6.0, 2.0});
  fsm.SetTransition(a, Fsm::kFinalState, 1.0);
  EXPECT_NEAR(fsm.Emission(a, 1), 0.2, 1e-12);
  EXPECT_NEAR(fsm.Emission(a, 2), 0.6, 1e-12);
  EXPECT_NO_THROW(fsm.Validate());
}

TEST(Fsm, SelfLoopRoutesSampleGeometricLength) {
  Fsm fsm(2);
  const int a = fsm.AddState("loop");
  fsm.SetInitialState(a);
  fsm.SetDeterministicEmission(a, 1);
  fsm.SetTransition(a, a, 0.5);
  fsm.SetTransition(a, Fsm::kFinalState, 0.5);
  fsm.Validate();
  Rng rng(13);
  RunningStat lengths;
  for (int i = 0; i < 20000; ++i) {
    lengths.Add(static_cast<double>(fsm.SampleRoute(rng).size()));
  }
  EXPECT_NEAR(lengths.Mean(), 2.0, 0.05);  // Geometric(1/2) mean.
}

}  // namespace
}  // namespace qnet
