// Randomized property sweeps across the inference stack. Each suite draws many random
// configurations (fixed seeds, deterministic) and asserts structural identities rather than
// specific values:
//   * log-space integral/sampler inverse-CDF identities on random segments,
//   * arrival-conditional density == exp(LogG)/Z on random neighborhoods, including
//     randomly missing neighbors and all delta-mu regimes,
//   * closed-form Figure-3 sampler == generic sampler (KS) on random full neighborhoods,
//   * end-to-end: random networks -> simulate -> observe -> initialize -> sweep, with
//     feasibility and observation pinning invariants after every stage.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "qnet/infer/conditional.h"
#include "qnet/infer/estimators.h"
#include "qnet/infer/gibbs.h"
#include "qnet/infer/initializer.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/logspace.h"
#include "qnet/support/math.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, ExpLinearInverseCdfIdentity) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const double lo = rng.Uniform(-5.0, 5.0);
    const double hi = lo + rng.Uniform(1e-6, 10.0);
    const double beta = rng.Uniform(-20.0, 20.0);
    const double v = rng.Uniform();
    const double x = SampleExpLinear(beta, lo, hi, v);
    ASSERT_GE(x, lo - 1e-9);
    ASSERT_LE(x, hi + 1e-9);
    const double log_total = LogIntegralExpLinear(0.0, beta, lo, hi);
    const double cdf = std::exp(LogIntegralExpLinear(0.0, beta, lo, x) - log_total);
    ASSERT_NEAR(cdf, v, 1e-6) << "beta=" << beta << " lo=" << lo << " hi=" << hi;
  }
}

// Random (possibly partial) neighborhoods with consistent geometry.
ArrivalMove RandomMove(Rng& rng) {
  ArrivalMove move;
  move.mu_e = rng.Uniform(0.2, 12.0);
  move.mu_pi = rng.Uniform(0.2, 12.0);
  move.c_pi = rng.Uniform(0.0, 5.0);
  move.rho_is_pi = false;
  move.has_t1 = rng.Bernoulli(0.8);
  move.has_nu_pi = rng.Bernoulli(0.8);
  const double lower = move.c_pi + rng.Uniform(0.0, 2.0);
  const double upper = lower + rng.Uniform(0.05, 6.0);
  move.lower = lower;
  move.upper = upper;
  move.d_e = upper + rng.Uniform(0.0, 3.0);
  if (move.has_t1) {
    move.t1 = rng.Uniform(lower - 2.0, upper + 2.0);
  }
  if (move.has_nu_pi) {
    move.t2 = rng.Uniform(lower - 2.0, upper + 2.0);
    move.d_nu_pi = std::max(move.t2, upper) + rng.Uniform(0.0, 2.0);
  }
  return move;
}

TEST_P(SeedSweep, ArrivalDensityEqualsNormalizedLogG) {
  Rng rng(GetParam() * 7919 + 13);
  for (int trial = 0; trial < 150; ++trial) {
    const ArrivalMove move = RandomMove(rng);
    const PiecewiseExpDensity density = BuildArrivalDensity(move);
    const double log_z = density.LogNormalizer();
    for (int i = 0; i < 8; ++i) {
      const double a = rng.Uniform(move.lower, move.upper);
      ASSERT_NEAR(density.LogPdf(a), move.LogG(a) - log_z, 1e-6)
          << "trial " << trial << " a=" << a << " t1=" << (move.has_t1 ? move.t1 : -1)
          << " t2=" << (move.has_nu_pi ? move.t2 : -1);
    }
    // Total mass check: CDF at the upper bound is 1.
    ASSERT_NEAR(density.Cdf(move.upper), 1.0, 1e-9);
    // Samples respect the window.
    for (int i = 0; i < 8; ++i) {
      const double a = density.Sample(rng);
      ASSERT_GE(a, move.lower - 1e-9);
      ASSERT_LE(a, move.upper + 1e-9);
    }
  }
}

TEST_P(SeedSweep, ClosedFormMatchesGenericOnRandomFullNeighborhoods) {
  Rng rng(GetParam() * 104729 + 7);
  for (int trial = 0; trial < 6; ++trial) {
    ArrivalMove move = RandomMove(rng);
    move.has_t1 = true;
    move.has_nu_pi = true;
    move.t1 = rng.Uniform(move.lower, move.upper);
    move.t2 = rng.Uniform(move.lower, move.upper);
    move.d_nu_pi = std::max(move.t2, move.upper) + rng.Uniform(0.1, 2.0);
    const PiecewiseExpDensity density = BuildArrivalDensity(move);
    std::vector<double> xs;
    for (int i = 0; i < 3000; ++i) {
      xs.push_back(SampleArrivalClosedForm(move, rng));
    }
    const double d = KsStatistic(xs, [&](double x) { return density.Cdf(x); });
    ASSERT_GT(KsPValue(d, xs.size()), 1e-5)
        << "trial " << trial << " d=" << d << " mu_e=" << move.mu_e
        << " mu_pi=" << move.mu_pi;
  }
}

TEST_P(SeedSweep, EndToEndInvariantsOnRandomNetworks) {
  Rng rng(GetParam() * 31 + 5);
  // Random network shape: tandem, three-tier, or feedback with random parameters.
  const int kind = static_cast<int>(rng.UniformInt(3));
  QueueingNetwork net = [&] {
    switch (kind) {
      case 0: {
        std::vector<double> mus;
        const int stages = 1 + static_cast<int>(rng.UniformInt(3));
        for (int i = 0; i < stages; ++i) {
          mus.push_back(rng.Uniform(2.0, 9.0));
        }
        return MakeTandemNetwork(rng.Uniform(0.5, 3.0), mus);
      }
      case 1: {
        ThreeTierConfig config;
        config.tier_sizes = {1 + static_cast<int>(rng.UniformInt(3)),
                             1 + static_cast<int>(rng.UniformInt(3)),
                             1 + static_cast<int>(rng.UniformInt(3))};
        config.arrival_rate = rng.Uniform(2.0, 8.0);
        config.service_rate = rng.Uniform(3.0, 8.0);
        return MakeThreeTierNetwork(config);
      }
      default:
        return MakeFeedbackNetwork(rng.Uniform(0.5, 2.0), rng.Uniform(3.0, 8.0),
                                   rng.Uniform(0.0, 0.6));
    }
  }();
  const auto rates = net.ExponentialRates();
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(rates[0], 120), rng);
  ASSERT_TRUE(truth.IsFeasible(1e-9));

  // Alternate between task-level and event-level observation schemes.
  const Observation obs = [&] {
    if (rng.Bernoulli(0.5)) {
      TaskSamplingScheme scheme;
      scheme.fraction = rng.Uniform(0.0, 0.6);
      scheme.observe_final_departure = rng.Bernoulli(0.5);
      return scheme.Apply(truth, rng);
    }
    EventSamplingScheme scheme;
    scheme.fraction = rng.Uniform(0.0, 0.6);
    return scheme.Apply(truth, rng);
  }();
  obs.Validate(truth);

  const EventLog init = InitializeFeasible(truth, obs, rates, rng);
  std::string why;
  ASSERT_TRUE(init.IsFeasible(1e-6, &why)) << "kind=" << kind << ": " << why;

  GibbsSampler sampler(init, obs, rates);
  for (int sweep = 0; sweep < 5; ++sweep) {
    sampler.Sweep(rng);
  }
  ASSERT_TRUE(sampler.State().IsFeasible(1e-6, &why)) << "kind=" << kind << ": " << why;
  for (EventId e = 0; static_cast<std::size_t>(e) < truth.NumEvents(); ++e) {
    if (obs.ArrivalObserved(e)) {
      ASSERT_DOUBLE_EQ(sampler.State().Arrival(e), truth.Arrival(e));
    }
    if (obs.DepartureObserved(e)) {
      ASSERT_DOUBLE_EQ(sampler.State().Departure(e), truth.Departure(e));
    }
  }
  // Warm-start rates are positive and within a broad factor of the truth when observed.
  const auto warm = WarmStartRates(truth, obs);
  for (std::size_t q = 0; q < warm.size(); ++q) {
    ASSERT_GT(warm[q], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace qnet
