// Validation of the piecewise-exponential density engine against numeric integration and
// inverse-CDF identities. This is the machinery under every Gibbs conditional.

#include "qnet/infer/piecewise_exp.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "qnet/support/check.h"
#include "qnet/support/logspace.h"
#include "qnet/support/math.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

// Three-piece density mimicking a Figure-3 conditional shape: decreasing, flat, increasing.
PiecewiseExpDensity MakeThreePiece() {
  PiecewiseExpDensity density;
  density.AddSegment(0.0, 1.0, 0.3, -2.0);
  density.AddSegment(1.0, 2.5, 0.3 - 2.0, 0.0);   // continuous at x=1
  density.AddSegment(2.5, 3.0, -1.7 - 3.0 * 2.5, 3.0);  // continuous at x=2.5
  density.Finalize();
  return density;
}

double NumericMass(const PiecewiseExpDensity& density, double lo, double hi,
                   int steps = 400000) {
  const double h = (hi - lo) / steps;
  double sum = 0.0;
  for (int i = 0; i <= steps; ++i) {
    const double x = lo + i * h;
    const double w = (i == 0 || i == steps) ? 0.5 : 1.0;
    const double lp = density.LogPdf(x);
    if (lp > -700.0) {
      sum += w * std::exp(lp);
    }
  }
  return sum * h;
}

TEST(PiecewiseExp, NormalizesToOne) {
  const PiecewiseExpDensity density = MakeThreePiece();
  EXPECT_NEAR(NumericMass(density, 0.0, 3.0), 1.0, 1e-4);
}

TEST(PiecewiseExp, CdfMatchesNumericIntegral) {
  const PiecewiseExpDensity density = MakeThreePiece();
  for (double x : {0.2, 0.5, 1.0, 1.7, 2.5, 2.8, 3.0}) {
    EXPECT_NEAR(density.Cdf(x), NumericMass(density, 0.0, x), 1e-4) << "x=" << x;
  }
  EXPECT_DOUBLE_EQ(density.Cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(density.Cdf(5.0), 1.0);
}

TEST(PiecewiseExp, MeanMatchesNumericIntegral) {
  const PiecewiseExpDensity density = MakeThreePiece();
  const int steps = 400000;
  const double h = 3.0 / steps;
  double mean = 0.0;
  for (int i = 0; i <= steps; ++i) {
    const double x = i * h;
    const double w = (i == 0 || i == steps) ? 0.5 : 1.0;
    mean += w * x * std::exp(density.LogPdf(x));
  }
  mean *= h;
  EXPECT_NEAR(density.Mean(), mean, 1e-4);
}

TEST(PiecewiseExp, SamplesMatchCdfByKs) {
  const PiecewiseExpDensity density = MakeThreePiece();
  Rng rng(71);
  std::vector<double> xs;
  for (int i = 0; i < 8000; ++i) {
    const double x = density.Sample(rng);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 3.0);
    xs.push_back(x);
  }
  const double d = KsStatistic(xs, [&](double x) { return density.Cdf(x); });
  EXPECT_GT(KsPValue(d, xs.size()), 1e-4) << "d=" << d;
}

TEST(PiecewiseExp, HandlesExtremeLogScalesWithoutOverflow) {
  // Segment log-densities near +-20000: any naive exp() would overflow/underflow.
  PiecewiseExpDensity density;
  density.AddSegment(1000.0, 1001.0, 20000.0, -15.0);
  density.AddSegment(1001.0, 1002.0, 20000.0 - 15.0 * 1001.0 + 5.0 * 1001.0, 5.0);
  density.Finalize();
  EXPECT_TRUE(std::isfinite(density.LogNormalizer()));
  Rng rng(73);
  for (int i = 0; i < 100; ++i) {
    const double x = density.Sample(rng);
    EXPECT_GE(x, 1000.0);
    EXPECT_LE(x, 1002.0);
  }
  EXPECT_NEAR(density.Cdf(1002.0), 1.0, 1e-9);
}

TEST(PiecewiseExp, SemiInfiniteTailSamplesExponential) {
  PiecewiseExpDensity density;
  density.AddSegment(2.0, kPosInf, 0.0, -3.0);
  density.Finalize();
  Rng rng(79);
  RunningStat rs;
  for (int i = 0; i < 100000; ++i) {
    const double x = density.Sample(rng);
    ASSERT_GE(x, 2.0);
    rs.Add(x);
  }
  EXPECT_NEAR(rs.Mean(), 2.0 + 1.0 / 3.0, 0.01);
  EXPECT_NEAR(density.Mean(), 2.0 + 1.0 / 3.0, 1e-12);
}

TEST(PiecewiseExp, MassProportionsAcrossSegments) {
  // Two flat segments with known mass ratio exp(1):exp(0) = e:1.
  PiecewiseExpDensity density;
  density.AddSegment(0.0, 1.0, 1.0, 0.0);
  density.AddSegment(1.0, 2.0, 0.0, 0.0);
  density.Finalize();
  const double p_first = std::exp(density.Segment(0).log_mass - density.LogNormalizer());
  EXPECT_NEAR(p_first, std::exp(1.0) / (std::exp(1.0) + 1.0), 1e-12);
  EXPECT_NEAR(density.Cdf(1.0), p_first, 1e-12);
}

TEST(PiecewiseExp, GuardsApiMisuse) {
  Rng rng(1);
  PiecewiseExpDensity density;
  EXPECT_THROW(density.Finalize(), Error);  // no support
  density.AddSegment(0.0, 1.0, 0.0, 0.0);
  EXPECT_THROW(density.AddSegment(0.5, 2.0, 0.0, 0.0), Error);      // overlap
  EXPECT_THROW(density.AddSegment(1.0, kPosInf, 0.0, 1.0), Error);  // unbounded increasing
  EXPECT_THROW(density.Sample(rng), Error);                         // not finalized
  density.Finalize();
  EXPECT_THROW(density.AddSegment(1.0, 2.0, 0.0, 0.0), Error);  // frozen
}

TEST(PiecewiseExp, ZeroWidthSegmentsIgnored) {
  PiecewiseExpDensity density;
  density.AddSegment(0.0, 0.0, 5.0, 0.0);
  density.AddSegment(0.0, 1.0, 0.0, 0.0);
  density.Finalize();
  EXPECT_EQ(density.NumSegments(), 1u);
}

}  // namespace
}  // namespace qnet
