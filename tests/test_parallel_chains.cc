// Parallel multi-chain engine: bit-exact determinism (same seed + chain count => same
// pooled summary, independent of thread count), pooled-estimate agreement with a long
// single chain on a tractable M/M/1 case, and R-hat/throughput bookkeeping.

#include "qnet/infer/parallel_chains.h"

#include <cmath>

#include <gtest/gtest.h>

#include "qnet/infer/initializer.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

struct Fixture {
  EventLog truth;
  Observation obs;
  std::vector<double> rates;
};

Fixture MakeMm1Fixture(std::size_t tasks, double fraction, std::uint64_t seed) {
  const QueueingNetwork net = MakeSingleQueueNetwork(2.0, 4.0);
  Rng rng(seed);
  EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, tasks), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = fraction;
  Observation obs = scheme.Apply(truth, rng);
  return Fixture{std::move(truth), std::move(obs), net.ExponentialRates()};
}

ParallelChainsOptions SmallRun(std::size_t threads) {
  ParallelChainsOptions options;
  options.chains = 4;
  options.threads = threads;
  options.sweeps = 60;
  options.burn_in = 20;
  return options;
}

TEST(ParallelChains, PooledSummaryIsDeterministicForFixedSeed) {
  const Fixture fixture = MakeMm1Fixture(100, 0.2, 5);
  const ParallelChainsResult a =
      RunParallelChains(fixture.truth, fixture.obs, fixture.rates, 123, SmallRun(1));
  const ParallelChainsResult b =
      RunParallelChains(fixture.truth, fixture.obs, fixture.rates, 123, SmallRun(1));
  ASSERT_EQ(a.pooled.NumSamples(), b.pooled.NumSamples());
  const auto mean_a = a.pooled.MeanService();
  const auto mean_b = b.pooled.MeanService();
  for (std::size_t q = 0; q < mean_a.size(); ++q) {
    EXPECT_DOUBLE_EQ(mean_a[q], mean_b[q]) << "q=" << q;
  }
  for (std::size_t q = 0; q < a.r_hat_service.size(); ++q) {
    EXPECT_DOUBLE_EQ(a.r_hat_service[q], b.r_hat_service[q]) << "q=" << q;
  }
}

TEST(ParallelChains, ThreadCountDoesNotChangeTheResult) {
  const Fixture fixture = MakeMm1Fixture(100, 0.2, 7);
  const ParallelChainsResult serial =
      RunParallelChains(fixture.truth, fixture.obs, fixture.rates, 99, SmallRun(1));
  const ParallelChainsResult parallel =
      RunParallelChains(fixture.truth, fixture.obs, fixture.rates, 99, SmallRun(4));
  ASSERT_EQ(serial.pooled.NumSamples(), parallel.pooled.NumSamples());
  const auto mean_s = serial.pooled.MeanService();
  const auto mean_p = parallel.pooled.MeanService();
  const auto wait_s = serial.pooled.MeanWait();
  const auto wait_p = parallel.pooled.MeanWait();
  for (std::size_t q = 0; q < mean_s.size(); ++q) {
    EXPECT_DOUBLE_EQ(mean_s[q], mean_p[q]) << "q=" << q;
    EXPECT_DOUBLE_EQ(wait_s[q], wait_p[q]) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(serial.max_r_hat, parallel.max_r_hat);
}

TEST(ParallelChains, ChainStatsAccountForEveryDraw) {
  const Fixture fixture = MakeMm1Fixture(80, 0.3, 11);
  const ParallelChainsOptions options = SmallRun(2);
  const ParallelChainsResult result =
      RunParallelChains(fixture.truth, fixture.obs, fixture.rates, 42, options);
  ASSERT_EQ(result.per_chain.size(), options.chains);
  ASSERT_EQ(result.chain_stats.size(), options.chains);
  std::size_t total = 0;
  for (std::size_t c = 0; c < options.chains; ++c) {
    EXPECT_EQ(result.chain_stats[c].draws, options.sweeps - options.burn_in);
    EXPECT_GE(result.chain_stats[c].seconds, 0.0);
    total += result.chain_stats[c].draws;
  }
  EXPECT_EQ(result.total_draws, total);
  EXPECT_EQ(result.pooled.NumSamples(), total);
  EXPECT_GT(result.DrawsPerSecond(), 0.0);
}

TEST(ParallelChains, PooledEstimateAgreesWithLongSingleChainOnMm1) {
  // Same posterior two ways: 4 pooled chains vs one long chain. Both estimate the mean
  // imputed service time at the M/M/1 queue; they must agree within Monte Carlo error.
  const Fixture fixture = MakeMm1Fixture(200, 0.25, 13);

  ParallelChainsOptions options;
  options.chains = 4;
  options.threads = 2;
  options.sweeps = 450;
  options.burn_in = 50;
  const ParallelChainsResult pooled =
      RunParallelChains(fixture.truth, fixture.obs, fixture.rates, 17, options);

  Rng rng(29);
  GibbsSampler single(InitializeFeasible(fixture.truth, fixture.obs, fixture.rates, rng),
                      fixture.obs, fixture.rates);
  PosteriorSummary single_summary(fixture.truth.NumQueues());
  for (int sweep = 0; sweep < 1600; ++sweep) {
    single.Sweep(rng);
    if (sweep >= 100) {
      single_summary.Accumulate(single.State());
    }
  }

  const auto pooled_service = pooled.pooled.MeanService();
  const auto single_service = single_summary.MeanService();
  EXPECT_NEAR(pooled_service[1], single_service[1], 0.02);
  // Both should also be near the true mean service 1/mu = 0.25.
  EXPECT_NEAR(pooled_service[1], 0.25, 0.05);
  // Well-mixed chains on a dense observation: R-hat close to 1.
  EXPECT_LT(pooled.max_r_hat, 1.2);
}

TEST(ParallelChains, RejectsBadOptions) {
  const Fixture fixture = MakeMm1Fixture(30, 0.5, 3);
  ParallelChainsOptions options;
  options.chains = 0;
  EXPECT_THROW(RunParallelChains(fixture.truth, fixture.obs, fixture.rates, 1, options),
               Error);
  options.chains = 2;
  options.sweeps = 10;
  options.burn_in = 10;
  EXPECT_THROW(RunParallelChains(fixture.truth, fixture.obs, fixture.rates, 1, options),
               Error);
  // One post-burn-in draw per chain: R-hat over >= 2 chains is impossible; must fail
  // upfront rather than after sampling.
  options.sweeps = 11;
  EXPECT_THROW(RunParallelChains(fixture.truth, fixture.obs, fixture.rates, 1, options),
               Error);
}

TEST(ParallelStem, DeterministicAndRecoversRatesOnMm1) {
  const Fixture fixture = MakeMm1Fixture(400, 0.5, 19);
  StemOptions stem;
  stem.iterations = 80;
  stem.burn_in = 30;
  stem.wait_sweeps = 0;
  const ParallelStemResult a =
      RunParallelStem(fixture.truth, fixture.obs, {}, 55, stem, 3, 3);
  const ParallelStemResult b =
      RunParallelStem(fixture.truth, fixture.obs, {}, 55, stem, 3, 1);
  ASSERT_EQ(a.pooled_rates.size(), b.pooled_rates.size());
  for (std::size_t q = 0; q < a.pooled_rates.size(); ++q) {
    EXPECT_DOUBLE_EQ(a.pooled_rates[q], b.pooled_rates[q]) << "q=" << q;
  }
  // True rates: lambda = 2, mu = 4. StEM from a half-observed trace lands nearby.
  EXPECT_NEAR(a.pooled_rates[0], 2.0, 0.4);
  EXPECT_NEAR(a.pooled_rates[1], 4.0, 0.8);
  EXPECT_EQ(a.r_hat_rates.size(), a.pooled_rates.size());
}

}  // namespace
}  // namespace qnet
