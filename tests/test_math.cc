// Unit tests for the statistics toolbox.

#include "qnet/support/math.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "qnet/support/check.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

TEST(RunningStat, MatchesDirectMoments) {
  const std::vector<double> xs = {1.0, 4.0, -2.0, 8.0, 3.5, 0.0};
  RunningStat rs;
  for (double x : xs) {
    rs.Add(x);
  }
  EXPECT_EQ(rs.Count(), xs.size());
  EXPECT_NEAR(rs.Mean(), Mean(xs), 1e-12);
  EXPECT_NEAR(rs.Variance(), Variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.Min(), -2.0);
  EXPECT_DOUBLE_EQ(rs.Max(), 8.0);
  EXPECT_NEAR(rs.Sum(), 14.5, 1e-12);
}

TEST(RunningStat, MergeEqualsSinglePass) {
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(rng.Normal(2.0, 3.0));
  }
  RunningStat all;
  RunningStat a;
  RunningStat b;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    all.Add(xs[i]);
    (i < 200 ? a : b).Add(xs[i]);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), all.Count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-10);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.Min(), all.Min());
  EXPECT_DOUBLE_EQ(a.Max(), all.Max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a;
  a.Add(1.0);
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.Count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.Count(), 1u);
  EXPECT_DOUBLE_EQ(empty.Mean(), 1.0);
}

TEST(Quantile, InterpolatesCorrectly) {
  const std::vector<double> xs = {3.0, 1.0, 2.0, 4.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Median(xs), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0 / 3.0), 2.0);
  EXPECT_THROW(Quantile(std::vector<double>{}, 0.5), Error);
  EXPECT_THROW(Quantile(xs, 1.5), Error);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> xs = {42.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 42.0);
}

TEST(Summarize, PopulatesAllFields) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  const SummaryStats s = Summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.variance, 2.5, 1e-12);
  EXPECT_DOUBLE_EQ(s.q25, 2.0);
  EXPECT_DOUBLE_EQ(s.q75, 4.0);
}

TEST(Digamma, KnownValues) {
  constexpr double kEulerGamma = 0.5772156649015329;
  EXPECT_NEAR(Digamma(1.0), -kEulerGamma, 1e-10);
  EXPECT_NEAR(Digamma(2.0), 1.0 - kEulerGamma, 1e-10);
  EXPECT_NEAR(Digamma(0.5), -kEulerGamma - 2.0 * std::log(2.0), 1e-10);
  // Recurrence: psi(x+1) = psi(x) + 1/x.
  for (double x : {0.3, 1.7, 4.2, 11.0}) {
    EXPECT_NEAR(Digamma(x + 1.0), Digamma(x) + 1.0 / x, 1e-10) << "x=" << x;
  }
}

TEST(Trigamma, KnownValues) {
  EXPECT_NEAR(Trigamma(1.0), M_PI * M_PI / 6.0, 1e-9);
  EXPECT_NEAR(Trigamma(0.5), M_PI * M_PI / 2.0, 1e-9);
  for (double x : {0.4, 2.3, 7.7}) {
    EXPECT_NEAR(Trigamma(x + 1.0), Trigamma(x) - 1.0 / (x * x), 1e-9) << "x=" << x;
  }
}

TEST(KsStatistic, PerfectFitIsSmall) {
  // Deterministic uniform grid against the uniform CDF.
  std::vector<double> xs;
  const std::size_t n = 1000;
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back((static_cast<double>(i) + 0.5) / static_cast<double>(n));
  }
  const double d = KsStatistic(xs, [](double x) { return x; });
  EXPECT_LT(d, 1.0 / static_cast<double>(n));
}

TEST(KsStatistic, DetectsWrongDistribution) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) {
    xs.push_back(rng.Uniform());
  }
  // Test against Exp(1): should reject decisively.
  const double d = KsStatistic(xs, [](double x) { return 1.0 - std::exp(-x); });
  EXPECT_LT(KsPValue(d, xs.size()), 1e-6);
  // And against the true uniform CDF: should not reject.
  const double d2 = KsStatistic(xs, [](double x) { return std::clamp(x, 0.0, 1.0); });
  EXPECT_GT(KsPValue(d2, xs.size()), 1e-3);
}

TEST(KsPValue, MonotoneInStatistic) {
  EXPECT_GT(KsPValue(0.01, 100), KsPValue(0.2, 100));
  EXPECT_GT(KsPValue(0.2, 10), KsPValue(0.2, 1000));
  EXPECT_LE(KsPValue(0.9, 1000), 1e-10);
}

TEST(MaxFrequencyDeviation, DetectsBias) {
  const std::vector<std::size_t> counts = {600, 400};
  const std::vector<double> fair = {0.5, 0.5};
  EXPECT_NEAR(MaxFrequencyDeviation(counts, fair), 0.1, 1e-12);
  EXPECT_THROW(MaxFrequencyDeviation(counts, std::vector<double>{1.0}), Error);
}

}  // namespace
}  // namespace qnet
