// Slice sampler validation against known densities.

#include "qnet/infer/slice.h"

#include <cmath>

#include <gtest/gtest.h>

#include "qnet/support/check.h"
#include "qnet/support/logspace.h"
#include "qnet/support/math.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

TEST(Slice, SamplesStandardNormal) {
  Rng rng(3);
  const auto log_density = [](double x) { return -0.5 * x * x; };
  std::vector<double> xs;
  double x = 0.5;
  for (int i = 0; i < 20000; ++i) {
    x = SliceSample(log_density, x, -kPosInf, kPosInf, rng);
    if (i % 4 == 0) {  // thin to reduce autocorrelation for the KS test
      xs.push_back(x);
    }
  }
  const double d = KsStatistic(xs, [](double v) { return 0.5 * std::erfc(-v / std::sqrt(2.0)); });
  EXPECT_GT(KsPValue(d, xs.size() / 4), 1e-4) << "d=" << d;  // conservative effective n
}

TEST(Slice, SamplesTruncatedExponentialWithinBounds) {
  Rng rng(5);
  const double rate = 2.0;
  const auto log_density = [&](double x) { return -rate * x; };
  std::vector<double> xs;
  double x = 1.0;
  RunningStat rs;
  for (int i = 0; i < 40000; ++i) {
    x = SliceSample(log_density, x, 0.5, 3.0, rng);
    ASSERT_GE(x, 0.5);
    ASSERT_LE(x, 3.0);
    rs.Add(x);
    xs.push_back(x);
  }
  // Compare mean to the truncated-exponential analytic mean.
  const double width = 2.5;
  const double u = rate * width;
  const double expected = 0.5 + 1.0 / rate - width * std::exp(-u) / (1.0 - std::exp(-u));
  EXPECT_NEAR(rs.Mean(), expected, 0.02);
}

TEST(Slice, BimodalDensityVisitsBothModes) {
  Rng rng(7);
  const auto log_density = [](double x) {
    return LogAdd(-0.5 * (x - 3.0) * (x - 3.0), -0.5 * (x + 3.0) * (x + 3.0));
  };
  SliceOptions options;
  options.width = 4.0;  // wide enough to hop modes
  double x = 3.0;
  int left = 0;
  int right = 0;
  for (int i = 0; i < 30000; ++i) {
    x = SliceSample(log_density, x, -kPosInf, kPosInf, rng, options);
    (x < 0 ? left : right)++;
  }
  EXPECT_GT(left, 5000);
  EXPECT_GT(right, 5000);
}

TEST(Slice, RespectsHardBoundsAndStartChecks) {
  Rng rng(9);
  const auto log_density = [](double x) { return -x; };
  EXPECT_THROW(SliceSample(log_density, 5.0, 0.0, 4.0, rng), Error);  // start outside
  const auto zero_density = [](double x) { return x > 2.0 ? 0.0 : kNegInf; };
  EXPECT_THROW(SliceSample(zero_density, 1.0, 0.0, 4.0, rng), Error);  // start has no mass
}

TEST(Slice, PeakedDensityStaysNearMode) {
  Rng rng(11);
  const auto log_density = [](double x) { return -5000.0 * (x - 1.0) * (x - 1.0); };
  double x = 1.0;
  RunningStat rs;
  for (int i = 0; i < 5000; ++i) {
    x = SliceSample(log_density, x, 0.0, 2.0, rng);
    rs.Add(x);
  }
  EXPECT_NEAR(rs.Mean(), 1.0, 0.005);
  EXPECT_LT(rs.Stddev(), 0.05);
}

}  // namespace
}  // namespace qnet
