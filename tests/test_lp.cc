// Tests for the two-phase simplex solver.

#include "qnet/lp/simplex.h"

#include <cmath>

#include <gtest/gtest.h>

#include "qnet/lp/problem.h"
#include "qnet/support/logspace.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

TEST(Simplex, TextbookMaximizationAsMinimization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0  => optimum (2, 6), value 36.
  LpProblem lp;
  const int x = lp.AddVariable("x");
  const int y = lp.AddVariable("y");
  lp.SetObjective(x, -3.0);
  lp.SetObjective(y, -5.0);
  lp.AddConstraint({{x, 1.0}}, LpRelation::kLessEqual, 4.0);
  lp.AddConstraint({{y, 2.0}}, LpRelation::kLessEqual, 12.0);
  lp.AddConstraint({{x, 3.0}, {y, 2.0}}, LpRelation::kLessEqual, 18.0);
  const LpSolution solution = SimplexSolver().Solve(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -36.0, 1e-8);
  EXPECT_NEAR(solution.values[0], 2.0, 1e-8);
  EXPECT_NEAR(solution.values[1], 6.0, 1e-8);
}

TEST(Simplex, GreaterEqualAndEqualityConstraints) {
  // min x + 2y s.t. x + y >= 3, x - y == 1, x,y >= 0 => (2, 1), value 4.
  LpProblem lp;
  const int x = lp.AddVariable("x");
  const int y = lp.AddVariable("y");
  lp.SetObjective(x, 1.0);
  lp.SetObjective(y, 2.0);
  lp.AddConstraint({{x, 1.0}, {y, 1.0}}, LpRelation::kGreaterEqual, 3.0);
  lp.AddConstraint({{x, 1.0}, {y, -1.0}}, LpRelation::kEqual, 1.0);
  const LpSolution solution = SimplexSolver().Solve(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 4.0, 1e-8);
  EXPECT_NEAR(solution.values[0], 2.0, 1e-8);
  EXPECT_NEAR(solution.values[1], 1.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  LpProblem lp;
  const int x = lp.AddVariable("x");
  lp.AddConstraint({{x, 1.0}}, LpRelation::kLessEqual, 1.0);
  lp.AddConstraint({{x, 1.0}}, LpRelation::kGreaterEqual, 2.0);
  EXPECT_EQ(SimplexSolver().Solve(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpProblem lp;
  const int x = lp.AddVariable("x");
  lp.SetObjective(x, -1.0);  // minimize -x with x unbounded above
  lp.AddConstraint({{x, 1.0}}, LpRelation::kGreaterEqual, 0.0);
  EXPECT_EQ(SimplexSolver().Solve(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, HandlesVariableBounds) {
  // min x + y with 2 <= x <= 5, y in [-3, -1]: optimum (2, -3).
  LpProblem lp;
  const int x = lp.AddVariable("x", 2.0, 5.0);
  const int y = lp.AddVariable("y", -3.0, -1.0);
  lp.SetObjective(x, 1.0);
  lp.SetObjective(y, 1.0);
  const LpSolution solution = SimplexSolver().Solve(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.values[0], 2.0, 1e-8);
  EXPECT_NEAR(solution.values[1], -3.0, 1e-8);
  EXPECT_NEAR(solution.objective, -1.0, 1e-8);
}

TEST(Simplex, HandlesFreeVariables) {
  // min |x - 3| via epigraph: min u s.t. u >= x-3, u >= 3-x, x free => u = 0, x = 3.
  LpProblem lp;
  const int x = lp.AddVariable("x", -kPosInf, kPosInf);
  const int u = lp.AddVariable("u");
  lp.SetObjective(u, 1.0);
  lp.AddConstraint({{u, 1.0}, {x, -1.0}}, LpRelation::kGreaterEqual, -3.0);
  lp.AddConstraint({{u, 1.0}, {x, 1.0}}, LpRelation::kGreaterEqual, 3.0);
  const LpSolution solution = SimplexSolver().Solve(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 0.0, 1e-8);
  EXPECT_NEAR(solution.values[0], 3.0, 1e-8);
}

TEST(Simplex, UpperBoundedOnlyVariable) {
  // min -x with x <= 7 and x >= -inf... bounded: optimum at 7.
  LpProblem lp;
  const int x = lp.AddVariable("x", -kPosInf, 7.0);
  lp.SetObjective(x, -1.0);
  const LpSolution solution = SimplexSolver().Solve(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.values[0], 7.0, 1e-8);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Klee-Minty-flavored degenerate constraints; correctness matters more than speed.
  LpProblem lp;
  const int x1 = lp.AddVariable("x1");
  const int x2 = lp.AddVariable("x2");
  const int x3 = lp.AddVariable("x3");
  lp.SetObjective(x1, -100.0);
  lp.SetObjective(x2, -10.0);
  lp.SetObjective(x3, -1.0);
  lp.AddConstraint({{x1, 1.0}}, LpRelation::kLessEqual, 1.0);
  lp.AddConstraint({{x1, 20.0}, {x2, 1.0}}, LpRelation::kLessEqual, 100.0);
  lp.AddConstraint({{x1, 200.0}, {x2, 20.0}, {x3, 1.0}}, LpRelation::kLessEqual, 10000.0);
  const LpSolution solution = SimplexSolver().Solve(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -10000.0, 1e-6);
}

TEST(Simplex, RedundantEqualitiesAreHarmless) {
  // x + y == 2 stated twice; min x => (0, 2).
  LpProblem lp;
  const int x = lp.AddVariable("x");
  const int y = lp.AddVariable("y");
  lp.SetObjective(x, 1.0);
  lp.AddConstraint({{x, 1.0}, {y, 1.0}}, LpRelation::kEqual, 2.0);
  lp.AddConstraint({{x, 1.0}, {y, 1.0}}, LpRelation::kEqual, 2.0);
  const LpSolution solution = SimplexSolver().Solve(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.values[0], 0.0, 1e-8);
  EXPECT_NEAR(solution.values[1], 2.0, 1e-8);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x s.t. -x <= -4 (i.e. x >= 4).
  LpProblem lp;
  const int x = lp.AddVariable("x");
  lp.SetObjective(x, 1.0);
  lp.AddConstraint({{x, -1.0}}, LpRelation::kLessEqual, -4.0);
  const LpSolution solution = SimplexSolver().Solve(lp);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.values[0], 4.0, 1e-8);
}

TEST(Simplex, RandomFeasibilitySystemsSolve) {
  // Random difference-constraint systems (the initializer's shape): always feasible.
  Rng rng(61);
  for (int trial = 0; trial < 20; ++trial) {
    LpProblem lp;
    const int n = 12;
    std::vector<int> vars;
    for (int i = 0; i < n; ++i) {
      vars.push_back(lp.AddVariable("v" + std::to_string(i)));
      lp.SetObjective(vars.back(), 1.0);
    }
    // Chain: v_i <= v_{i+1} plus random extra forward edges.
    for (int i = 0; i + 1 < n; ++i) {
      lp.AddConstraint({{vars[i], 1.0}, {vars[i + 1], -1.0}}, LpRelation::kLessEqual, 0.0);
    }
    for (int k = 0; k < 8; ++k) {
      const int a = static_cast<int>(rng.UniformInt(n - 1));
      const int b = a + 1 + static_cast<int>(rng.UniformInt(n - a - 1));
      lp.AddConstraint({{vars[a], 1.0}, {vars[b], -1.0}}, LpRelation::kLessEqual,
                       -rng.Uniform());  // v_a + gap <= v_b
    }
    lp.AddConstraint({{vars[0], 1.0}}, LpRelation::kGreaterEqual, 1.0);
    const LpSolution solution = SimplexSolver().Solve(lp);
    ASSERT_EQ(solution.status, LpStatus::kOptimal) << "trial " << trial;
    // Verify all constraints hold.
    for (int i = 0; i < lp.NumConstraints(); ++i) {
      const LpConstraint& c = lp.Constraint(i);
      double lhs = 0.0;
      for (const auto& [v, coeff] : c.terms) {
        lhs += coeff * solution.values[static_cast<std::size_t>(v)];
      }
      if (c.relation == LpRelation::kLessEqual) {
        EXPECT_LE(lhs, c.rhs + 1e-7);
      } else if (c.relation == LpRelation::kGreaterEqual) {
        EXPECT_GE(lhs, c.rhs - 1e-7);
      } else {
        EXPECT_NEAR(lhs, c.rhs, 1e-7);
      }
    }
  }
}

}  // namespace
}  // namespace qnet
