// CSV round-trip tests for event logs, observations, and series output.

#include "qnet/trace/csv.h"

#include <sstream>

#include <gtest/gtest.h>

#include "qnet/model/builders.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/check.h"
#include "qnet/support/rng.h"
#include "qnet/trace/table.h"

namespace qnet {
namespace {

TEST(Csv, EventLogRoundTripsExactly) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
  Rng rng(3);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(2.0, 40), rng);
  std::stringstream buffer;
  WriteEventLog(buffer, log);
  const EventLog restored = ReadEventLog(buffer, net.NumQueues());
  ASSERT_EQ(restored.NumEvents(), log.NumEvents());
  ASSERT_EQ(restored.NumTasks(), log.NumTasks());
  for (int k = 0; k < log.NumTasks(); ++k) {
    const auto& original = log.TaskEvents(k);
    const auto& copy = restored.TaskEvents(k);
    ASSERT_EQ(original.size(), copy.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_DOUBLE_EQ(restored.Arrival(copy[i]), log.Arrival(original[i]));
      EXPECT_DOUBLE_EQ(restored.Departure(copy[i]), log.Departure(original[i]));
      EXPECT_EQ(restored.At(copy[i]).queue, log.At(original[i]).queue);
      EXPECT_EQ(restored.At(copy[i]).state, log.At(original[i]).state);
    }
  }
  std::string why;
  EXPECT_TRUE(restored.IsFeasible(1e-9, &why)) << why;
}

TEST(Csv, ObservationRoundTrips) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0});
  Rng rng(5);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(2.0, 30), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.4;
  const Observation obs = scheme.Apply(log, rng);
  std::stringstream buffer;
  WriteObservation(buffer, obs);
  const Observation restored = ReadObservation(buffer, log);
  EXPECT_EQ(restored.arrival_observed, obs.arrival_observed);
  EXPECT_EQ(restored.departure_observed, obs.departure_observed);
}

TEST(Csv, QueuesHeaderMakesNumQueuesSelfDescribing) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
  Rng rng(11);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(2.0, 20), rng);
  std::stringstream buffer;
  WriteEventLog(buffer, log);
  EXPECT_EQ(buffer.str().rfind("# queues=3\n", 0), 0u);

  // No out-of-band num_queues needed any more.
  const EventLog restored = ReadEventLog(buffer);
  EXPECT_EQ(restored.NumQueues(), log.NumQueues());
  EXPECT_EQ(restored.NumEvents(), log.NumEvents());

  // An explicit count is still accepted but must agree with the header.
  std::stringstream again(buffer.str());
  EXPECT_EQ(ReadEventLog(again, net.NumQueues()).NumQueues(), net.NumQueues());
  std::stringstream mismatched(buffer.str());
  EXPECT_THROW(ReadEventLog(mismatched, net.NumQueues() + 2), Error);
}

TEST(Csv, HeaderlessFilesStillReadWithExplicitNumQueues) {
  const QueueingNetwork net = MakeSingleQueueNetwork(1.0, 2.0);
  Rng rng(13);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(1.0, 8), rng);
  std::stringstream buffer;
  WriteEventLog(buffer, log);
  // Strip the '# queues=N' line to simulate a pre-header legacy file.
  const std::string text = buffer.str();
  const std::string headerless = text.substr(text.find('\n') + 1);

  std::stringstream legacy(headerless);
  const EventLog restored = ReadEventLog(legacy, net.NumQueues());
  EXPECT_EQ(restored.NumEvents(), log.NumEvents());

  // Without the header the self-describing overload cannot work.
  std::stringstream legacy2(headerless);
  EXPECT_THROW(ReadEventLog(legacy2), Error);
}

TEST(Csv, RejectsCorruptStreams) {
  std::stringstream empty;
  EXPECT_THROW(ReadEventLog(empty, 2), Error);
  std::stringstream bad_header("nonsense\n1,2,3\n");
  EXPECT_THROW(ReadEventLog(bad_header, 2), Error);
  // Malformed '# queues=' values raise Error too, not a raw std::stoi exception.
  std::stringstream non_numeric("# queues=abc\ntask,state,queue,arrival,departure,initial\n");
  EXPECT_THROW(ReadEventLog(non_numeric), Error);
  std::stringstream empty_value("# queues=\ntask,state,queue,arrival,departure,initial\n");
  EXPECT_THROW(ReadEventLog(empty_value), Error);
  std::stringstream zero("# queues=0\ntask,state,queue,arrival,departure,initial\n");
  EXPECT_THROW(ReadEventLog(zero), Error);
  std::stringstream truncated("# queues=3\n");
  EXPECT_THROW(ReadEventLog(truncated), Error);
  // A trailing comma (lost initial flag) must not be absorbed as an empty flag field.
  std::stringstream trailing_comma(
      "# queues=2\ntask,state,queue,arrival,departure,initial\n0,-1,0,0,1.5,\n");
  EXPECT_THROW(ReadEventLog(trailing_comma), Error);
  // Corrupt numeric fields raise Error, not std::invalid_argument.
  std::stringstream junk_number(
      "# queues=2\ntask,state,queue,arrival,departure,initial\n0,-1,0,0,oops,1\n");
  EXPECT_THROW(ReadEventLog(junk_number), Error);
}

TEST(Csv, ObservationRejectsMalformedFlags) {
  const QueueingNetwork net = MakeSingleQueueNetwork(1.0, 2.0);
  Rng rng(7);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(1.0, 3), rng);
  std::stringstream trailing("event,arrival_observed,departure_observed\n0,1,\n");
  EXPECT_THROW(ReadObservation(trailing, log), Error);
  std::stringstream junk("event,arrival_observed,departure_observed\n0,yes,1\n");
  EXPECT_THROW(ReadObservation(junk, log), Error);
}

TEST(Csv, SeriesWriterFormatsRows) {
  std::stringstream buffer;
  WriteSeries(buffer, {"x", "y"}, {{1.0, 2.0}, {3.0, 4.5}});
  const std::string text = buffer.str();
  EXPECT_NE(text.find("x,y"), std::string::npos);
  EXPECT_NE(text.find("3,4.5"), std::string::npos);
  EXPECT_THROW(WriteSeries(buffer, {"x"}, {{1.0, 2.0}}), Error);
}

TEST(Csv, FileRoundTrip) {
  const QueueingNetwork net = MakeSingleQueueNetwork(1.0, 2.0);
  Rng rng(7);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(1.0, 10), rng);
  const std::string path = ::testing::TempDir() + "/qnet_log.csv";
  WriteEventLogFile(path, log);
  const EventLog restored = ReadEventLogFile(path, net.NumQueues());
  EXPECT_EQ(restored.NumEvents(), log.NumEvents());
  EXPECT_THROW(ReadEventLogFile("/nonexistent/dir/file.csv", 2), Error);
}

TEST(Table, AlignsAndFormats) {
  TablePrinter table({"name", "value"});
  table.AddRow(std::vector<std::string>{"alpha", "1.0"});
  table.AddRow(std::vector<double>{2.0, 3.14159}, 2);
  std::stringstream buffer;
  table.Print(buffer);
  const std::string text = buffer.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("3.14"), std::string::npos);
  const std::vector<std::string> too_many = {"too", "many", "cells"};
  EXPECT_THROW(table.AddRow(too_many), Error);
  EXPECT_EQ(FormatDouble(1.23456, 3), "1.235");
}

}  // namespace
}  // namespace qnet
