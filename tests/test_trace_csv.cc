// CSV round-trip tests for event logs, observations, and series output.

#include "qnet/trace/csv.h"

#include <sstream>

#include <gtest/gtest.h>

#include "qnet/model/builders.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/check.h"
#include "qnet/support/rng.h"
#include "qnet/trace/table.h"

namespace qnet {
namespace {

TEST(Csv, EventLogRoundTripsExactly) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
  Rng rng(3);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(2.0, 40), rng);
  std::stringstream buffer;
  WriteEventLog(buffer, log);
  const EventLog restored = ReadEventLog(buffer, net.NumQueues());
  ASSERT_EQ(restored.NumEvents(), log.NumEvents());
  ASSERT_EQ(restored.NumTasks(), log.NumTasks());
  for (int k = 0; k < log.NumTasks(); ++k) {
    const auto& original = log.TaskEvents(k);
    const auto& copy = restored.TaskEvents(k);
    ASSERT_EQ(original.size(), copy.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_DOUBLE_EQ(restored.Arrival(copy[i]), log.Arrival(original[i]));
      EXPECT_DOUBLE_EQ(restored.Departure(copy[i]), log.Departure(original[i]));
      EXPECT_EQ(restored.At(copy[i]).queue, log.At(original[i]).queue);
      EXPECT_EQ(restored.At(copy[i]).state, log.At(original[i]).state);
    }
  }
  std::string why;
  EXPECT_TRUE(restored.IsFeasible(1e-9, &why)) << why;
}

TEST(Csv, ObservationRoundTrips) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0});
  Rng rng(5);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(2.0, 30), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.4;
  const Observation obs = scheme.Apply(log, rng);
  std::stringstream buffer;
  WriteObservation(buffer, obs);
  const Observation restored = ReadObservation(buffer, log);
  EXPECT_EQ(restored.arrival_observed, obs.arrival_observed);
  EXPECT_EQ(restored.departure_observed, obs.departure_observed);
}

TEST(Csv, RejectsCorruptStreams) {
  std::stringstream empty;
  EXPECT_THROW(ReadEventLog(empty, 2), Error);
  std::stringstream bad_header("nonsense\n1,2,3\n");
  EXPECT_THROW(ReadEventLog(bad_header, 2), Error);
}

TEST(Csv, SeriesWriterFormatsRows) {
  std::stringstream buffer;
  WriteSeries(buffer, {"x", "y"}, {{1.0, 2.0}, {3.0, 4.5}});
  const std::string text = buffer.str();
  EXPECT_NE(text.find("x,y"), std::string::npos);
  EXPECT_NE(text.find("3,4.5"), std::string::npos);
  EXPECT_THROW(WriteSeries(buffer, {"x"}, {{1.0, 2.0}}), Error);
}

TEST(Csv, FileRoundTrip) {
  const QueueingNetwork net = MakeSingleQueueNetwork(1.0, 2.0);
  Rng rng(7);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(1.0, 10), rng);
  const std::string path = ::testing::TempDir() + "/qnet_log.csv";
  WriteEventLogFile(path, log);
  const EventLog restored = ReadEventLogFile(path, net.NumQueues());
  EXPECT_EQ(restored.NumEvents(), log.NumEvents());
  EXPECT_THROW(ReadEventLogFile("/nonexistent/dir/file.csv", 2), Error);
}

TEST(Table, AlignsAndFormats) {
  TablePrinter table({"name", "value"});
  table.AddRow(std::vector<std::string>{"alpha", "1.0"});
  table.AddRow(std::vector<double>{2.0, 3.14159}, 2);
  std::stringstream buffer;
  table.Print(buffer);
  const std::string text = buffer.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("3.14"), std::string::npos);
  const std::vector<std::string> too_many = {"too", "many", "cells"};
  EXPECT_THROW(table.AddRow(too_many), Error);
  EXPECT_EQ(FormatDouble(1.23456, 3), "1.235");
}

}  // namespace
}  // namespace qnet
