// The batched move kernel's three contracts, pinned bottom-up:
//  * vmath — the N-element batch forms are bitwise the scalar inline forms (the
//    bit-identity-by-construction claim), the documented range semantics hold exactly,
//    and accuracy tracks libm to a few ulp;
//  * BatchRng — every lane is the unmodified Rng(MixSeed(bucket_seed, lane)) uniform
//    stream (golden values pinned), and the row fills drain exactly those streams,
//    advancing active lanes only;
//  * PiecewiseExpBatch — FinalizeAll + Sample/SampleAll are bit-identical to
//    PiecewiseExpDensity::Finalize + SampleWith on the same segments and uniforms,
//    across every segment-shape regime the Gibbs builders can emit;
// and top-down: sweeps through the batched kernel are bit-identical to the
// move-at-a-time reference kernel on the same schedule and streams, for every batch
// width, thread count, and bucket shape (including empty and one-move buckets).

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "qnet/infer/gibbs.h"
#include "qnet/infer/initializer.h"
#include "qnet/infer/piecewise_exp.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/batch_rng.h"
#include "qnet/support/rng.h"
#include "qnet/support/vmath.h"

namespace qnet {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kQNaN = std::numeric_limits<double>::quiet_NaN();

// Bitwise equality that treats any NaN payload as equal to any other (the contract is
// "same value", and the kernels only ever produce quiet NaNs).
void ExpectBitEqual(double a, double b, const char* what, std::size_t i) {
  if (std::isnan(a) && std::isnan(b)) {
    return;
  }
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << " lane " << i << ": " << a << " vs " << b;
}

// --- vmath ------------------------------------------------------------------------------

std::vector<double> VmathProbeInputs() {
  std::vector<double> xs = {
      0.0, -0.0, 1.0, -1.0, 0.5, -0.5,
      // The Expm1/Log1p seam constants and their neighborhoods.
      0.35, -0.35, 0.25, -0.25, 0.350000001, -0.349999999,
      // Exp range limits and just beyond.
      709.0, 709.9, -708.0, -708.5, 1000.0, -1000.0,
      // Log special domain points.
      kInf, -kInf, kQNaN, std::numeric_limits<double>::min() / 2,  // subnormal
      std::numeric_limits<double>::denorm_min(),
  };
  Rng rng(404);
  for (int i = 0; i < 500; ++i) {
    xs.push_back(rng.Uniform(-700.0, 700.0));
    xs.push_back(rng.Uniform(-0.4, 0.4));
    xs.push_back(std::exp(rng.Uniform(-30.0, 30.0)));  // Log/Log1p positive inputs
  }
  return xs;
}

TEST(Vmath, BatchFormsAreBitwiseTheScalarForms) {
  const std::vector<double> xs = VmathProbeInputs();
  std::vector<double> out(xs.size());
  vmath::ExpN(xs, out);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ExpectBitEqual(out[i], vmath::Exp(xs[i]), "ExpN", i);
  }
  vmath::LogN(xs, out);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ExpectBitEqual(out[i], vmath::Log(xs[i]), "LogN", i);
  }
  vmath::Expm1N(xs, out);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ExpectBitEqual(out[i], vmath::Expm1(xs[i]), "Expm1N", i);
  }
  vmath::Log1pN(xs, out);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ExpectBitEqual(out[i], vmath::Log1p(xs[i]), "Log1pN", i);
  }
}

TEST(Vmath, RangeSemanticsAreExact) {
  EXPECT_EQ(vmath::Exp(0.0), 1.0);
  EXPECT_EQ(vmath::Exp(710.0), kInf);
  EXPECT_EQ(vmath::Exp(kInf), kInf);
  EXPECT_EQ(vmath::Exp(-709.0), 0.0);
  EXPECT_EQ(vmath::Exp(-kInf), 0.0);
  EXPECT_TRUE(std::isnan(vmath::Exp(kQNaN)));

  EXPECT_EQ(vmath::Log(1.0), 0.0);
  EXPECT_EQ(vmath::Log(0.0), -kInf);
  EXPECT_EQ(vmath::Log(kInf), kInf);
  EXPECT_TRUE(std::isnan(vmath::Log(-1.0)));
  EXPECT_TRUE(std::isnan(vmath::Log(kQNaN)));

  EXPECT_EQ(vmath::Expm1(0.0), 0.0);
  EXPECT_EQ(vmath::Log1p(0.0), 0.0);
  EXPECT_TRUE(std::isnan(vmath::Expm1(kQNaN)));
  EXPECT_TRUE(std::isnan(vmath::Log1p(kQNaN)));
}

TEST(Vmath, TracksLibmToAFewUlp) {
  const std::vector<double> xs = VmathProbeInputs();
  const auto rel = [](double got, double want) {
    if (want == 0.0 || !std::isfinite(want)) {
      return got == want ? 0.0 : 1.0;
    }
    return std::abs(got - want) / std::abs(want);
  };
  // 1e-14 relative is ~45 ulp of headroom over the measured few-ulp error; far below
  // anything the sampler can feel, tight enough to catch a broken polynomial or table.
  // Subnormal inputs/outputs are excluded: vmath::Exp flushes the denormal tail to zero
  // by documented contract, and Log1p's near-arm quotient loses precision on subnormal
  // x — inputs production code never passes (the range tests above pin the actual
  // behavior there).
  const double tiny = std::numeric_limits<double>::min();
  for (double x : xs) {
    if (std::isnan(x)) {
      continue;
    }
    if (x > -708.0) {
      EXPECT_LT(rel(vmath::Exp(x), std::exp(x)), 1e-14) << "Exp(" << x << ")";
    }
    if (x >= tiny) {
      EXPECT_LT(rel(vmath::Log(x), std::log(x)), 1e-14) << "Log(" << x << ")";
    }
    if (std::abs(x) < 700.0) {
      EXPECT_LT(rel(vmath::Expm1(x), std::expm1(x)), 1e-14) << "Expm1(" << x << ")";
    }
    if (x > -1.0 && std::abs(x) >= tiny) {
      EXPECT_LT(rel(vmath::Log1p(x), std::log1p(x)), 1e-14) << "Log1p(" << x << ")";
    }
  }
}

// --- BatchRng golden streams ------------------------------------------------------------

TEST(BatchRng, EveryLaneIsTheScalarRngStream) {
  for (std::uint64_t seed : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0xdeadbeef},
                             std::uint64_t{0x12345}}) {
    for (std::size_t width : {std::size_t{1}, std::size_t{5}, kMaxBatchWidth}) {
      BatchRng lanes(seed, width);
      for (std::size_t l = 0; l < width; ++l) {
        Rng scalar(MixSeed(seed, static_cast<std::uint64_t>(l)));
        for (int i = 0; i < 64; ++i) {
          ASSERT_EQ(lanes.Uniform(l), scalar.Uniform())
              << "seed " << seed << " width " << width << " lane " << l << " draw " << i;
        }
      }
    }
  }
}

TEST(BatchRng, PinnedGoldenValues) {
  // First draws of lanes 0..2 for bucket_seed 0x12345, hex-exact. These pin the whole
  // seeding + stepping pipeline (MixSeed -> SplitMix64 expansion -> xoshiro256++ ->
  // 53-bit uniform); any change to any stage moves these bits.
  BatchRng lanes(0x12345, 3);
  const double golden[3][4] = {
      {0x1.5bf7fe74155ebp-1, 0x1.d896f6a7d72ap-3, 0x1.f07daf67f76e2p-1, 0x1.1996a02b03eb8p-4},
      {0x1.7a6cd39c79d6ap-2, 0x1.563eae3cb68fep-1, 0x1.4dcba10a56d82p-2, 0x1.0ccc8eaad62b4p-2},
      {0x1.ff59876d9ac9fp-1, 0x1.7d31b4813578p-6, 0x1.f7f1444bc0ed6p-1, 0x1.5879c091eca66p-1},
  };
  for (int draw = 0; draw < 4; ++draw) {
    for (std::size_t l = 0; l < 3; ++l) {
      EXPECT_EQ(lanes.Uniform(l), golden[l][draw]) << "lane " << l << " draw " << draw;
    }
  }
}

TEST(BatchRng, AdjacentSeedsAndLanesDecorrelate) {
  // Avalanche sanity: MixSeed must separate adjacent bucket seeds and adjacent lanes.
  BatchRng a(1000, 4);
  BatchRng b(1001, 4);
  for (std::size_t l = 0; l < 4; ++l) {
    EXPECT_NE(a.Uniform(l), b.Uniform(l)) << "lane " << l;
  }
  BatchRng c(1000, 4);
  EXPECT_NE(c.Uniform(0), c.Uniform(1));
  EXPECT_NE(c.Uniform(1), c.Uniform(2));
}

TEST(BatchRng, RowFillsDrainTheSameStreamsAndSkipInactiveLanes) {
  const std::uint64_t seed = 777;
  const std::size_t width = 8;
  BatchRng rows(seed, width);
  BatchRng scalar(seed, width);

  // A full row, a tail row (3 active lanes), then a paired double row: per lane the
  // concatenation must equal the scalar drain, and lanes beyond a tail row's width must
  // not advance.
  std::array<double, 8> row0, row1;
  rows.FillUniformRow(std::span<double>(row0.data(), width));
  for (std::size_t l = 0; l < width; ++l) {
    EXPECT_EQ(row0[l], scalar.Uniform(l)) << "full row lane " << l;
  }
  rows.FillUniformRow(std::span<double>(row0.data(), 3));
  for (std::size_t l = 0; l < 3; ++l) {
    EXPECT_EQ(row0[l], scalar.Uniform(l)) << "tail row lane " << l;
  }
  rows.FillUniformRows(std::span<double>(row0.data(), width),
                       std::span<double>(row1.data(), width));
  for (std::size_t l = 0; l < width; ++l) {
    // Lanes 3..7 skipped the tail row, so their streams are one draw behind lanes 0..2 —
    // exactly what the scalar drain (which also skipped them) reproduces.
    EXPECT_EQ(row0[l], scalar.Uniform(l)) << "rows[0] lane " << l;
    EXPECT_EQ(row1[l], scalar.Uniform(l)) << "rows[1] lane " << l;
  }
}

// --- PiecewiseExpBatch vs PiecewiseExpDensity -------------------------------------------

struct SegmentSpec {
  double lo, hi, alpha, beta;
};

// One case per regime of the two-exp mass formula and the inverse-CDF arms: rising,
// falling, numerically flat (|beta * width| below the 1.5e-8 threshold), large positive
// exponent (u >= 30), the unbounded final-departure tail, multi-segment densities, and
// huge log offsets (the log-space normalization the scalar class documents).
const std::vector<std::vector<SegmentSpec>>& DensityCases() {
  static const std::vector<std::vector<SegmentSpec>> cases = {
      {{0.0, 1.0, 0.0, 2.0}},                    // single rising
      {{0.0, 1.0, 0.0, -3.0}},                   // single falling
      {{2.0, 2.5, 1.0, 1e-12}},                  // flat arm: |u| ~ 5e-13
      {{0.0, 1.0, -5.0, 40.0}},                  // big-u arm: u = 40
      {{1.0, kInf, 3.0, -2.0}},                  // unbounded tail
      {{0.0, 0.5, 0.0, 4.0}, {0.5, kInf, 2.0, -6.0}},  // bounded + tail (final departure)
      {{0.0, 0.3, 1.0, 5.0}, {0.3, 0.7, 2.5, -1.0}, {0.7, 1.1, 1.8, -8.0}},  // 3 segments
      {{0.0, 1.0, 1.0e4, 2.0}, {1.0, 2.0, 1.0002e4, -2.0}},  // huge alpha offsets
      {{0.0, 1e-9, 0.0, 1.0}},                   // tiny width (flat via width)
  };
  return cases;
}

TEST(PiecewiseExpBatch, SampleIsBitIdenticalToScalarSampleWith) {
  const auto& cases = DensityCases();
  PiecewiseExpBatch batch;
  std::vector<PiecewiseExpDensity> scalars(cases.size());
  for (std::size_t c = 0; c < cases.size(); ++c) {
    const std::size_t m = batch.BeginMove();
    ASSERT_EQ(m, c);
    for (const SegmentSpec& s : cases[c]) {
      batch.AddSegment(s.lo, s.hi, s.alpha, s.beta);
      scalars[c].AddSegment(s.lo, s.hi, s.alpha, s.beta);
    }
    scalars[c].Finalize();
  }
  batch.FinalizeAll();
  const double quantiles[] = {1e-9, 0.1, 0.5, 0.9, 1.0 - 1e-9};
  for (std::size_t c = 0; c < cases.size(); ++c) {
    ASSERT_EQ(batch.NumSegments(c), scalars[c].NumSegments());
    for (double p : quantiles) {
      for (double v : quantiles) {
        const double want = scalars[c].SampleWith(p, v);
        const double got = batch.Sample(c, p, v);
        EXPECT_EQ(got, want) << "case " << c << " p=" << p << " v=" << v;
      }
    }
  }
}

TEST(PiecewiseExpBatch, SampleAllMatchesPerSlotSampleAndSkipsEmptySlots) {
  const auto& cases = DensityCases();
  PiecewiseExpBatch batch;
  std::vector<bool> empty;
  // Interleave an empty (degenerate-window) slot after every second density.
  for (std::size_t c = 0; c < cases.size(); ++c) {
    batch.BeginMove();
    for (const SegmentSpec& s : cases[c]) {
      batch.AddSegment(s.lo, s.hi, s.alpha, s.beta);
    }
    empty.push_back(false);
    if (c % 2 == 1) {
      batch.BeginMove();  // no segments: the kernel's degenerate-window slot
      empty.push_back(true);
    }
  }
  batch.FinalizeAll();
  const std::size_t n = batch.NumMoves();
  std::vector<double> picks(n), invs(n), out(n, -123.0);
  Rng rng(31);
  for (std::size_t m = 0; m < n; ++m) {
    picks[m] = rng.Uniform();
    invs[m] = rng.Uniform();
  }
  batch.SampleAll(picks, invs, out);
  for (std::size_t m = 0; m < n; ++m) {
    if (empty[m]) {
      EXPECT_EQ(out[m], -123.0) << "empty slot " << m << " must be left untouched";
    } else {
      EXPECT_EQ(out[m], batch.Sample(m, picks[m], invs[m])) << "slot " << m;
    }
  }
}

TEST(PiecewiseExpBatch, ClearedBatchReusesSlotsAcrossRankShrink) {
  // First fill: three-segment moves populate every rank. After Clear, a batch of
  // one-segment moves must ignore the stale rank-1/2 data (dead ranks self-neutralize,
  // and the rectangular passes stop at the new live-rank bound).
  PiecewiseExpBatch batch;
  for (int m = 0; m < 4; ++m) {
    batch.BeginMove();
    batch.AddSegment(0.0, 0.3, 1.0, 5.0);
    batch.AddSegment(0.3, 0.7, 2.5, -1.0);
    batch.AddSegment(0.7, 1.1, 1.8, -8.0);
  }
  batch.FinalizeAll();

  batch.Clear();
  PiecewiseExpDensity scalar;
  scalar.AddSegment(0.0, 2.0, 0.5, -1.5);
  scalar.Finalize();
  for (int m = 0; m < 4; ++m) {
    batch.BeginMove();
    batch.AddSegment(0.0, 2.0, 0.5, -1.5);
  }
  batch.FinalizeAll();
  for (int m = 0; m < 4; ++m) {
    for (double p : {0.05, 0.95}) {
      EXPECT_EQ(batch.Sample(static_cast<std::size_t>(m), p, 0.5),
                scalar.SampleWith(p, 0.5))
          << "slot " << m << " p=" << p;
    }
  }
}

// --- Kernel level: batched vs reference on real sweeps ----------------------------------

struct Fixture {
  EventLog truth;
  Observation obs;
  std::vector<double> rates;
  EventLog init;
};

Fixture MakeFixture(std::size_t tasks, double fraction, std::uint64_t seed) {
  ThreeTierConfig config;
  config.tier_sizes = {1, 2, 2};
  const QueueingNetwork net = MakeThreeTierNetwork(config);
  Rng rng(seed);
  EventLog truth = SimulateWorkload(net, PoissonArrivals(10.0, tasks), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = fraction;
  Observation obs = scheme.Apply(truth, rng);
  std::vector<double> rates = net.ExponentialRates();
  EventLog init = InitializeFeasible(truth, obs, rates, rng);
  return Fixture{std::move(truth), std::move(obs), std::move(rates), std::move(init)};
}

EventLog RunSweeps(const Fixture& fixture, const GibbsOptions& options, int sweeps,
                   std::uint64_t seed, const ShardedSweepOptions* sharded = nullptr) {
  GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates, options);
  if (sharded != nullptr) {
    sampler.EnableShardedSweeps(*sharded);
  }
  Rng rng(seed);
  for (int s = 0; s < sweeps; ++s) {
    sampler.Sweep(rng);
  }
  return sampler.State();
}

void ExpectStatesBitEqual(const EventLog& a, const EventLog& b, const char* what) {
  ASSERT_EQ(a.NumEvents(), b.NumEvents());
  for (EventId e = 0; static_cast<std::size_t>(e) < a.NumEvents(); ++e) {
    // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the contract is bit-identical, not merely close.
    ASSERT_EQ(a.Arrival(e), b.Arrival(e)) << what << ": arrival of event " << e;
    ASSERT_EQ(a.Departure(e), b.Departure(e)) << what << ": departure of event " << e;
  }
}

TEST(BatchedKernel, BitIdenticalToReferenceAcrossBatchWidths) {
  const Fixture fixture = MakeFixture(120, 0.1, 99);
  // Widths straddling the tile boundary shapes: 1 (every tile is one move), a width
  // that never divides the bucket sizes evenly, the default, and neighbors of 8.
  for (std::size_t width : {std::size_t{1}, std::size_t{5}, std::size_t{8}, std::size_t{9},
                            kMaxBatchWidth}) {
    GibbsOptions batched;
    batched.batch_width = width;
    GibbsOptions reference = batched;
    reference.batched_reference = true;
    const EventLog a = RunSweeps(fixture, batched, 25, 1234);
    const EventLog b = RunSweeps(fixture, reference, 25, 1234);
    ExpectStatesBitEqual(a, b, "batched vs reference");
  }
}

TEST(BatchedKernel, BitIdenticalAcrossThreadCountsAndToReference) {
  const Fixture fixture = MakeFixture(120, 0.1, 99);
  GibbsOptions options;  // batched by default
  ShardedSweepOptions sharded;
  sharded.shards = 4;

  sharded.threads = 1;
  const EventLog one = RunSweeps(fixture, options, 25, 88, &sharded);
  sharded.threads = 2;
  const EventLog two = RunSweeps(fixture, options, 25, 88, &sharded);
  sharded.threads = 4;
  const EventLog four = RunSweeps(fixture, options, 25, 88, &sharded);
  ExpectStatesBitEqual(one, two, "1 vs 2 threads");
  ExpectStatesBitEqual(one, four, "1 vs 4 threads");

  // The reference kernel on the same 4-shard schedule must also match: thread count and
  // execution style (tiles vs move-at-a-time) are both invisible to the result.
  GibbsOptions reference = options;
  reference.batched_reference = true;
  sharded.threads = 2;
  const EventLog ref = RunSweeps(fixture, reference, 25, 88, &sharded);
  ExpectStatesBitEqual(one, ref, "batched vs reference on shards");
}

TEST(BatchedKernel, TinyAndEmptyBucketsMatchReference) {
  // A small trace over many shards produces buckets far narrower than the batch width —
  // including empty and one-move buckets; every tile is then a tail tile.
  const Fixture fixture = MakeFixture(8, 0.3, 41);
  GibbsOptions batched;
  GibbsOptions reference;
  reference.batched_reference = true;
  ShardedSweepOptions sharded;
  sharded.shards = 8;
  sharded.threads = 1;
  const EventLog a = RunSweeps(fixture, batched, 30, 5, &sharded);
  const EventLog b = RunSweeps(fixture, reference, 30, 5, &sharded);
  ExpectStatesBitEqual(a, b, "tiny buckets");
}

TEST(BatchedKernel, FullyObservedTraceSweepsAsNoOp) {
  // fraction = 1 observes every task: zero latent moves, so a batched sweep must run
  // (and do nothing) without tripping the schedule build or the kernel's empty-bucket
  // handling.
  const Fixture fixture = MakeFixture(10, 1.0, 17);
  GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates);
  ASSERT_EQ(sampler.NumLatentArrivals(), 0u);
  Rng rng(3);
  sampler.Sweep(rng);
  ExpectStatesBitEqual(sampler.State(), fixture.init, "no-op sweep");
}

TEST(BatchedKernel, StaysFeasibleAndMixes) {
  // End-to-end sanity on the production configuration: states remain feasible and the
  // sampler actually moves the latent coordinates.
  const Fixture fixture = MakeFixture(120, 0.1, 99);
  GibbsSampler sampler(fixture.init, fixture.obs, fixture.rates);
  Rng rng(23);
  for (int s = 0; s < 50; ++s) {
    sampler.Sweep(rng);
  }
  std::string why;
  EXPECT_TRUE(sampler.State().IsFeasible(1e-6, &why)) << why;
  std::size_t moved = 0;
  for (EventId e = 0; static_cast<std::size_t>(e) < fixture.init.NumEvents(); ++e) {
    if (sampler.State().Arrival(e) != fixture.init.Arrival(e)) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 0u);
}

}  // namespace
}  // namespace qnet
