// Tests for the movie-voting testbed substitute (paper Section 5.2 environment).

#include "qnet/webapp/movievote.h"

#include <gtest/gtest.h>

#include "qnet/support/rng.h"

namespace qnet {
namespace {

TEST(MovieVote, NetworkShapeMatchesPaperDeployment) {
  const webapp::MovieVoteTestbed testbed = webapp::MakeTestbed();
  // 1 virtual arrival + 1 network + 10 web servers + 1 database = 13 queues.
  EXPECT_EQ(testbed.network.NumQueues(), 13);
  EXPECT_EQ(testbed.web_queues.size(), 10u);
  EXPECT_EQ(testbed.network.QueueName(testbed.network_queue), "network");
  EXPECT_EQ(testbed.network.QueueName(testbed.db_queue), "database");
}

TEST(MovieVote, RoutesAreNetWebDbNet) {
  const webapp::MovieVoteTestbed testbed = webapp::MakeTestbed();
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto route = testbed.network.GetFsm().SampleRoute(rng);
    ASSERT_EQ(route.size(), 4u);
    EXPECT_EQ(route[0].queue, testbed.network_queue);
    EXPECT_GE(route[1].queue, testbed.web_queues.front());
    EXPECT_LE(route[1].queue, testbed.web_queues.back());
    EXPECT_EQ(route[2].queue, testbed.db_queue);
    EXPECT_EQ(route[3].queue, testbed.network_queue);
  }
}

TEST(MovieVote, TraceMatchesPaperScale) {
  const webapp::MovieVoteConfig config;
  const webapp::MovieVoteTestbed testbed = webapp::MakeTestbed(config);
  Rng rng(5);
  const EventLog trace = webapp::GenerateTrace(testbed, config, rng);
  // Paper: 5759 requests, 23036 arrival events (4 per request).
  EXPECT_NEAR(static_cast<double>(trace.NumTasks()), 5759.0, 400.0);
  EXPECT_EQ(trace.NumEvents(),
            static_cast<std::size_t>(trace.NumTasks()) * 5u);  // incl. initial events
  std::string why;
  EXPECT_TRUE(trace.IsFeasible(1e-6, &why)) << why;
}

TEST(MovieVote, StarvedServerReceivesHandfulOfRequests) {
  const webapp::MovieVoteConfig config;
  const webapp::MovieVoteTestbed testbed = webapp::MakeTestbed(config);
  Rng rng(7);
  const EventLog trace = webapp::GenerateTrace(testbed, config, rng);
  const auto counts = trace.PerQueueCount();
  const auto starved = static_cast<std::size_t>(testbed.web_queues.front());
  // Paper's outlier: ~19 requests for the starved server.
  EXPECT_GE(counts[starved], 5u);
  EXPECT_LE(counts[starved], 45u);
  // Other web servers share the load roughly evenly.
  for (std::size_t i = 1; i < testbed.web_queues.size(); ++i) {
    const auto q = static_cast<std::size_t>(testbed.web_queues[i]);
    EXPECT_GT(counts[q], 400u);
  }
  // The network queue is visited twice per task.
  EXPECT_EQ(counts[static_cast<std::size_t>(testbed.network_queue)],
            static_cast<std::size_t>(trace.NumTasks()) * 2u);
}

TEST(MovieVote, LoadRampIsVisibleInWaitingTimes) {
  const webapp::MovieVoteConfig config;
  const webapp::MovieVoteTestbed testbed = webapp::MakeTestbed(config);
  Rng rng(9);
  const EventLog trace = webapp::GenerateTrace(testbed, config, rng);
  // Mean network wait in the last tenth of the horizon exceeds the first tenth: the ramp
  // pushes the (twice-visited) network queue toward saturation.
  double early = 0.0;
  double late = 0.0;
  std::size_t early_n = 0;
  std::size_t late_n = 0;
  for (EventId e : trace.QueueOrder(testbed.network_queue)) {
    const double t = trace.Arrival(e);
    if (t < config.horizon * 0.1) {
      early += trace.WaitTime(e);
      ++early_n;
    } else if (t > config.horizon * 0.9) {
      late += trace.WaitTime(e);
      ++late_n;
    }
  }
  ASSERT_GT(early_n, 0u);
  ASSERT_GT(late_n, 0u);
  EXPECT_GT(late / static_cast<double>(late_n), 2.0 * early / static_cast<double>(early_n));
}

}  // namespace
}  // namespace qnet
