// M/G/1 (Pollaczek-Khinchine) and M/M/c (Erlang-C) analytics, validated against known
// identities and against the discrete-event simulator.

#include "qnet/infer/mg1.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "qnet/dist/deterministic.h"
#include "qnet/dist/exponential.h"
#include "qnet/dist/hyperexp.h"
#include "qnet/infer/mm1.h"
#include "qnet/model/network.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/check.h"
#include "qnet/support/math.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

TEST(Mg1, ReducesToMm1ForExponentialService) {
  const Exponential service(10.0);
  const Mg1Metrics mg1 = AnalyzeMg1(5.0, service);
  const Mm1Metrics mm1 = AnalyzeMm1(5.0, 10.0);
  ASSERT_TRUE(mg1.stable);
  EXPECT_NEAR(mg1.mean_wait, mm1.mean_wait, 1e-12);
  EXPECT_NEAR(mg1.mean_response, mm1.mean_response, 1e-12);
}

TEST(Mg1, DeterministicServiceHalvesWaiting) {
  // M/D/1 waits are exactly half of M/M/1 at the same utilization.
  const Deterministic det(0.1);
  const Mg1Metrics md1 = AnalyzeMg1(5.0, det);
  const Mm1Metrics mm1 = AnalyzeMm1(5.0, 10.0);
  ASSERT_TRUE(md1.stable);
  EXPECT_NEAR(md1.mean_wait, 0.5 * mm1.mean_wait, 1e-12);
}

TEST(Mg1, HighVarianceServiceInflatesWaiting) {
  const HyperExponential bursty({0.9, 0.1}, {20.0, 0.8});  // same-ish mean, high SCV
  const Mg1Metrics mg1 = AnalyzeMg1(2.0, bursty);
  const Mg1Metrics exp_case = AnalyzeMg1(2.0, Exponential(1.0 / bursty.Mean()));
  ASSERT_TRUE(mg1.stable);
  EXPECT_GT(mg1.mean_wait, 2.0 * exp_case.mean_wait);
}

TEST(Mg1, UnstableWhenOverloaded) {
  EXPECT_FALSE(AnalyzeMg1(20.0, Exponential(10.0)).stable);
}

TEST(Mg1, MatchesSimulatedMd1Queue) {
  // Simulate M/D/1 via the network simulator and compare mean waits.
  QueueingNetwork net(std::make_unique<Exponential>(6.0));
  net.AddQueue("d", std::make_unique<Deterministic>(0.1));
  Fsm& fsm = net.MutableFsm();
  const int s = fsm.AddState("s");
  fsm.SetDeterministicEmission(s, 1);
  fsm.SetInitialState(s);
  fsm.SetTransition(s, Fsm::kFinalState, 1.0);
  net.Validate();
  Rng rng(3);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(6.0, 40000), rng);
  RunningStat wait;
  const auto& order = log.QueueOrder(1);
  for (std::size_t i = order.size() / 5; i < order.size(); ++i) {
    wait.Add(log.WaitTime(order[i]));
  }
  const Mg1Metrics theory = AnalyzeMg1(6.0, Deterministic(0.1));
  EXPECT_NEAR(wait.Mean(), theory.mean_wait, 0.15 * theory.mean_wait);
}

TEST(Mmc, ReducesToMm1ForOneServer) {
  const MmcMetrics mmc = AnalyzeMmc(5.0, 10.0, 1);
  const Mm1Metrics mm1 = AnalyzeMm1(5.0, 10.0);
  ASSERT_TRUE(mmc.stable);
  EXPECT_NEAR(mmc.mean_wait, mm1.mean_wait, 1e-12);
  EXPECT_NEAR(mmc.prob_wait, mm1.utilization, 1e-12);  // P(wait) = rho for M/M/1
}

TEST(Mmc, KnownErlangCValue) {
  // Textbook: lambda = 2, mu = 1, c = 3 -> rho = 2/3, C(3,2) = 4/9.
  const MmcMetrics mmc = AnalyzeMmc(2.0, 1.0, 3);
  ASSERT_TRUE(mmc.stable);
  EXPECT_NEAR(mmc.prob_wait, 4.0 / 9.0, 1e-12);
  EXPECT_NEAR(mmc.mean_wait, (4.0 / 9.0) / (3.0 - 2.0), 1e-12);
}

TEST(Mmc, PoolingBeatsSeparateQueues) {
  // Classic result: one pooled M/M/2 beats two separate M/M/1 at the same total load.
  const MmcMetrics pooled = AnalyzeMmc(8.0, 5.0, 2);
  const Mm1Metrics split = AnalyzeMm1(4.0, 5.0);
  ASSERT_TRUE(pooled.stable);
  EXPECT_LT(pooled.mean_response, split.mean_response);
}

TEST(Mmc, UnstableAndGuards) {
  EXPECT_FALSE(AnalyzeMmc(20.0, 5.0, 2).stable);
  EXPECT_THROW(AnalyzeMmc(1.0, 1.0, 0), Error);
  EXPECT_THROW(AnalyzeMg1(-1.0, Exponential(1.0)), Error);
}

}  // namespace
}  // namespace qnet
