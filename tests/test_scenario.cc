// Scenario engine: grid expansion, cell realization, posterior-predictive evaluation
// (thread-count bit-equality, analytic-vs-DES agreement, load-axis monotonicity),
// report CSV round-trips, and the streaming forecast hook.

#include "qnet/scenario/scenario_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>

#include "qnet/dist/gamma.h"
#include "qnet/infer/mg1.h"
#include "qnet/infer/mm1.h"
#include "qnet/model/builders.h"
#include "qnet/scenario/forecast.h"
#include "qnet/scenario/parameter_posterior.h"
#include "qnet/scenario/scenario_spec.h"
#include "qnet/sim/simulator.h"
#include "qnet/stream/replay_stream.h"
#include "qnet/support/check.h"
#include "qnet/support/math.h"
#include "qnet/support/rng.h"
#include "qnet/trace/scenario_report.h"

namespace qnet {
namespace {

ScenarioAxis LoadAxis(std::vector<double> values) {
  ScenarioAxis axis;
  axis.kind = AxisKind::kArrivalScale;
  axis.name = "load";
  axis.values = std::move(values);
  return axis;
}

ScenarioAxis ServiceAxis(int queue, std::vector<double> values) {
  ScenarioAxis axis;
  axis.kind = AxisKind::kServiceScale;
  axis.name = "svc";
  axis.queue = queue;
  axis.values = std::move(values);
  return axis;
}

TEST(ScenarioGrid, ExpandsAxesWithAxisZeroFastest) {
  const ScenarioGrid grid({LoadAxis({1.0, 2.0, 3.0}), ServiceAxis(1, {1.0, 1.5})});
  EXPECT_EQ(grid.NumCells(), 6u);
  EXPECT_EQ(grid.NumAxes(), 2u);
  const ScenarioCell cell = grid.Cell(4);
  EXPECT_EQ(cell.coords[0], 1u);  // axis 0 varies fastest: 4 = 1 + 1*3
  EXPECT_EQ(cell.coords[1], 1u);
  EXPECT_DOUBLE_EQ(cell.values[0], 2.0);
  EXPECT_DOUBLE_EQ(cell.values[1], 1.5);
  EXPECT_THROW(grid.Cell(6), Error);
}

TEST(ScenarioGrid, EmptyAxisListIsABaselineCell) {
  const ScenarioGrid grid({});
  EXPECT_EQ(grid.NumCells(), 1u);
  EXPECT_TRUE(grid.Cell(0).values.empty());
}

TEST(ScenarioGrid, ValidatesAxes) {
  ScenarioAxis bad = LoadAxis({});
  EXPECT_THROW(ScenarioGrid({bad}), Error);
  bad = LoadAxis({-1.0});
  EXPECT_THROW(ScenarioGrid({bad}), Error);
  bad = LoadAxis({1.0});
  bad.name = "";
  EXPECT_THROW(ScenarioGrid({bad}), Error);
  EXPECT_THROW(ScenarioGrid({LoadAxis({1.0}), LoadAxis({2.0})}), Error);  // duplicate name
  ScenarioAxis servers;
  servers.kind = AxisKind::kServerCount;
  servers.name = "servers";
  servers.queue = 1;
  servers.values = {1.5};  // non-integral server count
  EXPECT_THROW(ScenarioGrid({servers}), Error);
}

TEST(ScenarioGrid, RealizeAppliesTransforms) {
  const QueueingNetwork base = MakeTandemNetwork(2.0, {5.0, 7.0});
  ScenarioAxis servers;
  servers.kind = AxisKind::kServerCount;
  servers.name = "servers";
  servers.queue = 2;
  servers.values = {3.0};
  const ScenarioGrid grid({LoadAxis({2.0}), ServiceAxis(1, {1.5}), servers});
  const CellRealization real =
      grid.Realize(base, grid.Cell(0), std::vector<double>{2.0, 5.0, 7.0});
  EXPECT_DOUBLE_EQ(real.rates[0], 4.0);   // lambda doubled
  EXPECT_DOUBLE_EQ(real.rates[1], 7.5);   // mu_1 scaled 1.5x
  EXPECT_DOUBLE_EQ(real.rates[2], 7.0);   // untouched per-server rate
  EXPECT_EQ(real.servers[2], 3);
  const auto rates = real.net.ExponentialRates();
  EXPECT_DOUBLE_EQ(rates[0], 4.0);
  EXPECT_DOUBLE_EQ(rates[1], 7.5);
  EXPECT_DOUBLE_EQ(rates[2], 21.0);  // pooled DES rate c * mu
}

TEST(ScenarioGrid, RealizeAppliesRoutingEdits) {
  // Two parallel replicas behind a uniform dispatch; scaling (state 0 -> queue 1) by 3
  // shifts the split from 1/2-1/2 to 3/4-1/4.
  ThreeTierConfig config;
  config.tier_sizes = {2};
  QueueingNetwork base = MakeThreeTierNetwork(config);
  ScenarioAxis route;
  route.kind = AxisKind::kRoutingScale;
  route.name = "shift";
  route.queue = 1;
  route.state = 0;
  route.values = {3.0};
  const ScenarioGrid grid({route});
  const CellRealization real =
      grid.Realize(base, grid.Cell(0), std::vector<double>{10.0, 5.0, 5.0});
  const Fsm& fsm = real.net.GetFsm();
  EXPECT_NEAR(fsm.Emission(0, 1), 0.75, 1e-12);
  EXPECT_NEAR(fsm.Emission(0, 2), 0.25, 1e-12);
}

TEST(ParameterPosterior, SourcesAgreeOnShapeAndMoments) {
  StemResult stem;
  stem.rate_trace = {{2.0, 5.0}, {2.2, 5.5}, {1.8, 4.5}, {2.0, 5.0}};
  const ParameterPosterior posterior = ParameterPosterior::FromStem(stem, 1);
  EXPECT_EQ(posterior.NumDraws(), 3u);
  EXPECT_EQ(posterior.NumQueues(), 2);
  EXPECT_NEAR(posterior.MeanRates()[1], 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(posterior.RateQuantile(0.0)[1], 4.5);
  EXPECT_DOUBLE_EQ(posterior.RateQuantile(1.0)[1], 5.5);
  EXPECT_THROW(ParameterPosterior::FromStem(stem, 4), Error);

  const ParameterPosterior point = ParameterPosterior::FromPoint({2.0, 5.0});
  EXPECT_EQ(point.NumDraws(), 1u);
  EXPECT_DOUBLE_EQ(point.Draw(0)[1], 5.0);
  EXPECT_THROW(ParameterPosterior::FromPoint({2.0}), Error);       // no queue rate
  EXPECT_THROW(ParameterPosterior::FromPoint({2.0, -1.0}), Error); // nonpositive
}

ScenarioReport EvaluateTandem(std::size_t threads, bool crn = false) {
  const QueueingNetwork base = MakeTandemNetwork(1.5, {6.0, 4.0});
  StemResult stem;
  stem.rate_trace = {{1.5, 6.0, 4.0}, {1.4, 6.3, 4.2}, {1.6, 5.8, 3.9}};
  ScenarioEngineOptions options;
  options.max_draws = 3;
  options.tasks_per_draw = 200;
  options.threads = threads;
  options.common_random_numbers = crn;
  ScenarioEngine engine(options);
  return engine.Evaluate(base, ParameterPosterior::FromStem(stem, 0),
                         ScenarioGrid({LoadAxis({1.0, 1.5, 2.0}), ServiceAxis(2, {1.0, 2.0})}),
                         /*seed=*/42);
}

TEST(ScenarioEngine, ReportsBitIdenticalAcrossThreadCounts) {
  const ScenarioReport one = EvaluateTandem(1);
  const ScenarioReport two = EvaluateTandem(2);
  const ScenarioReport four = EvaluateTandem(4);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
  // The serialized bytes are the determinism contract CI cares about — compare them too.
  std::ostringstream s1, s4;
  WriteScenarioReport(s1, one);
  WriteScenarioReport(s4, four);
  EXPECT_EQ(s1.str(), s4.str());
}

TEST(ScenarioEngine, CommonRandomNumbersBitIdenticalAcrossThreadCounts) {
  const ScenarioReport one = EvaluateTandem(1, /*crn=*/true);
  const ScenarioReport four = EvaluateTandem(4, /*crn=*/true);
  EXPECT_EQ(one, four);
}

TEST(ScenarioEngine, AgreesWithAnalyticOnMm1Cells) {
  // Single M/M/1 queue, moderate load: the DES mean response must land on the
  // steady-state formula within sampling error.
  const QueueingNetwork base = MakeSingleQueueNetwork(2.0, 5.0);
  ScenarioEngineOptions options;
  options.max_draws = 1;
  options.tasks_per_draw = 20000;
  options.warmup_fraction = 0.25;
  ScenarioEngine engine(options);
  const ScenarioReport report =
      engine.Evaluate(base, ParameterPosterior::FromPoint({2.0, 5.0}),
                      ScenarioGrid({LoadAxis({1.0, 1.5})}), 7);
  for (const CellResult& cell : report.cells) {
    ASSERT_TRUE(cell.analytic_valid);
    ASSERT_TRUE(cell.analytic_stable);
    const double lambda = 2.0 * cell.axis_values[0];
    const Mm1Metrics mm1 = AnalyzeMm1(lambda, 5.0);
    EXPECT_NEAR(cell.analytic_mean_response, mm1.mean_response, 1e-12);
    EXPECT_NEAR(cell.mean_response.mean, mm1.mean_response, 0.12 * mm1.mean_response);
    EXPECT_NEAR(cell.utilization[1].mean, mm1.utilization, 0.1);
  }
}

TEST(ScenarioEngine, FlagsSaturatedCellsAnalytically) {
  const QueueingNetwork base = MakeSingleQueueNetwork(2.0, 5.0);
  ScenarioEngineOptions options;
  options.max_draws = 1;
  options.tasks_per_draw = 200;
  ScenarioEngine engine(options);
  const ScenarioReport report =
      engine.Evaluate(base, ParameterPosterior::FromPoint({2.0, 5.0}),
                      ScenarioGrid({LoadAxis({1.0, 3.0})}), 7);
  EXPECT_TRUE(report.cells[0].analytic_stable);
  EXPECT_FALSE(report.cells[1].analytic_stable);  // rho = 6/5
  EXPECT_TRUE(std::isnan(report.cells[1].analytic_mean_response));
}

TEST(AnalyzeCellAnalytic, Mg1BranchMatchesDesOnGammaService) {
  // Gamma(k=4) service (SCV 1/4): Pollaczek-Khinchine against a long DES run of the
  // same network — the M/G/1 leg of the cross-check.
  QueueingNetwork net = MakeSingleQueueNetwork(2.0, 5.0);
  net.SetService(1, std::make_unique<GammaDist>(4.0, 20.0));  // mean 0.2 (shape 4, rate 20)
  const AnalyticPrediction analytic = AnalyzeCellAnalytic(net);
  ASSERT_TRUE(analytic.stable);
  const Mg1Metrics mg1 = AnalyzeMg1(2.0, net.Service(1));
  EXPECT_NEAR(analytic.mean_response, mg1.mean_response, 1e-12);
  EXPECT_NEAR(analytic.utilization[1], 0.4, 1e-9);

  Rng rng(11);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(2.0, 20000), rng);
  RunningStat response;
  for (int k = log.NumTasks() / 4; k < log.NumTasks(); ++k) {
    response.Add(log.TaskExitTime(k) - log.TaskEntryTime(k));
  }
  EXPECT_NEAR(response.Mean(), analytic.mean_response, 0.12 * analytic.mean_response);
}

TEST(AnalyzeCellAnalytic, Mg1OnExponentialEqualsMm1) {
  const QueueingNetwork net = MakeSingleQueueNetwork(2.0, 5.0);
  const Mg1Metrics mg1 = AnalyzeMg1(2.0, net.Service(1));
  const Mm1Metrics mm1 = AnalyzeMm1(2.0, 5.0);
  EXPECT_NEAR(mg1.mean_response, mm1.mean_response, 1e-12);
}

TEST(ScenarioEngine, UtilizationAndLatencyMonotoneAlongLoadAxis) {
  // Pure load axis under common random numbers: compressing the same arrival uniforms
  // against the same service draws can only lengthen queues (Lindley monotonicity), so
  // the sweep is monotone exactly, not just statistically.
  const QueueingNetwork base = MakeTandemNetwork(1.5, {6.0, 4.0});
  ScenarioEngineOptions options;
  options.max_draws = 2;
  options.tasks_per_draw = 1000;
  options.common_random_numbers = true;
  ScenarioEngine engine(options);
  StemResult stem;
  stem.rate_trace = {{1.5, 6.0, 4.0}, {1.45, 6.2, 4.1}};
  const ScenarioReport report =
      engine.Evaluate(base, ParameterPosterior::FromStem(stem, 0),
                      ScenarioGrid({LoadAxis({0.5, 1.0, 1.5, 2.0})}), 13);
  for (std::size_t i = 1; i < report.cells.size(); ++i) {
    EXPECT_GE(report.cells[i].mean_response.mean, report.cells[i - 1].mean_response.mean);
    EXPECT_GE(report.cells[i].tail_response.mean, report.cells[i - 1].tail_response.mean);
    for (int q = 1; q < report.num_queues; ++q) {
      EXPECT_GE(report.cells[i].utilization[static_cast<std::size_t>(q)].mean,
                report.cells[i - 1].utilization[static_cast<std::size_t>(q)].mean);
    }
  }
}

TEST(ScenarioEngine, ServerUpgradeReducesLatencyAtTheBottleneck) {
  const QueueingNetwork base = MakeTandemNetwork(3.0, {4.0, 9.0});  // queue 1 is hot
  ScenarioAxis servers;
  servers.kind = AxisKind::kServerCount;
  servers.name = "servers";
  servers.queue = 1;
  servers.values = {1.0, 2.0};
  ScenarioEngineOptions options;
  options.max_draws = 1;
  options.tasks_per_draw = 4000;
  options.common_random_numbers = true;
  ScenarioEngine engine(options);
  const ScenarioReport report =
      engine.Evaluate(base, ParameterPosterior::FromPoint({3.0, 4.0, 9.0}),
                      ScenarioGrid({servers}), 19);
  EXPECT_EQ(report.cells[0].bottleneck_queue, 1);
  EXPECT_LT(report.cells[1].mean_response.mean, report.cells[0].mean_response.mean);
  EXPECT_LT(report.cells[1].utilization[1].mean, report.cells[0].utilization[1].mean);
}

TEST(ScenarioReportCsv, RoundTripsBitExactly) {
  const ScenarioReport report = EvaluateTandem(2);
  std::stringstream buffer;
  WriteScenarioReport(buffer, report);
  const ScenarioReport reread = ReadScenarioReport(buffer);
  EXPECT_EQ(report, reread);
  // And the re-serialization is byte-identical.
  std::ostringstream again;
  WriteScenarioReport(again, reread);
  std::ostringstream first;
  WriteScenarioReport(first, report);
  EXPECT_EQ(first.str(), again.str());
}

TEST(ScenarioReportCsv, RoundTripsNanAnalyticAndFiles) {
  const QueueingNetwork base = MakeSingleQueueNetwork(2.0, 5.0);
  ScenarioEngineOptions options;
  options.max_draws = 1;
  options.tasks_per_draw = 100;
  ScenarioEngine engine(options);
  const ScenarioReport report =
      engine.Evaluate(base, ParameterPosterior::FromPoint({2.0, 5.0}),
                      ScenarioGrid({LoadAxis({3.0})}), 3);
  ASSERT_TRUE(std::isnan(report.cells[0].analytic_mean_response));
  // Report equality treats two NaN analytic fields as equal (saturated cells are NaN by
  // design), so whole-report comparisons work on saturated grids too.
  EXPECT_EQ(report, report);
  const std::string path = ::testing::TempDir() + "/qnet_scenario_report.csv";
  WriteScenarioReportFile(path, report);
  const ScenarioReport reread = ReadScenarioReportFile(path);
  EXPECT_TRUE(std::isnan(reread.cells[0].analytic_mean_response));
  EXPECT_EQ(report, reread);
  std::remove(path.c_str());
}

TEST(ScenarioReportCsv, RejectsCorruptInput) {
  std::istringstream missing("# cells=1\n");
  EXPECT_THROW(ReadScenarioReport(missing), Error);
  const ScenarioReport report = EvaluateTandem(1);
  std::ostringstream buffer;
  WriteScenarioReport(buffer, report);
  std::string text = buffer.str();
  text.pop_back();                 // drop trailing newline…
  text += ",999\n";                // …and append a stray field to the last row
  std::istringstream corrupt(text);
  EXPECT_THROW(ReadScenarioReport(corrupt), Error);
  // A negative seed must be rejected, not silently wrapped by stoull.
  std::string negative_seed = buffer.str();
  const std::size_t at = negative_seed.find("# seed=");
  ASSERT_NE(at, std::string::npos);
  negative_seed.insert(at + 7, "-");
  std::istringstream negative(negative_seed);
  EXPECT_THROW(ReadScenarioReport(negative), Error);
}

TEST(WindowForecaster, HooksIntoStreamingEstimatorDeterministically) {
  const QueueingNetwork net = MakeTandemNetwork(4.0, {10.0, 20.0});
  Rng rng(23);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(4.0, 600), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.4;
  const Observation obs = scheme.Apply(truth, rng);

  ScenarioEngineOptions forecast_options;
  forecast_options.max_draws = 1;
  forecast_options.tasks_per_draw = 100;
  // CRN makes the 1x-vs-2x comparison exactly monotone even at 100 tasks per draw.
  forecast_options.common_random_numbers = true;
  const ScenarioGrid grid({LoadAxis({1.0, 2.0})});

  const auto run = [&](bool pipeline) {
    WindowForecaster forecaster(net, grid, forecast_options, /*seed=*/5);
    StreamingEstimatorOptions options;
    options.window.window_duration = 25.0;
    options.stem.iterations = 20;
    options.stem.burn_in = 5;
    options.stem.wait_sweeps = 0;
    options.pipeline = pipeline;
    options.on_window = forecaster.Hook();
    std::vector<double> init(static_cast<std::size_t>(net.NumQueues()), 1.0);
    init[0] = 4.0;
    StreamingEstimator estimator(init, /*seed=*/9, options);
    LogReplayStream stream(truth, obs);
    const auto estimates = estimator.Run(stream);
    return std::make_pair(estimates, forecaster.Reports());
  };

  const auto [estimates, reports] = run(false);
  ASSERT_FALSE(estimates.empty());
  ASSERT_EQ(reports.size(), estimates.size());  // merged-tail re-fit replaced, not appended
  for (std::size_t w = 0; w < reports.size(); ++w) {
    EXPECT_EQ(reports[w].cells.size(), 2u);
    // Forecast at the window's own rates is ordered: doubling load hurts (exact under
    // common random numbers).
    EXPECT_GE(reports[w].cells[1].mean_response.mean,
              reports[w].cells[0].mean_response.mean);
    // The forecast lambda is the window's EMPIRICAL arrival rate (~4 here), not the
    // absolute-time-anchored StEM iterate (which decays toward 0 over the stream):
    // baseline utilization must be substantive, and under CRN doubling load compresses
    // the same busy time into a much shorter horizon (short of exactly 2x only by the
    // backlog extending past the last arrival).
    const double util_1x = reports[w].cells[0].utilization[1].mean;
    const double util_2x = reports[w].cells[1].utilization[1].mean;
    EXPECT_GT(util_1x, 0.15);  // lambda ~4 against mu ~10
    EXPECT_GT(util_2x, 1.4 * util_1x);
  }
  // The forecast sequence inherits the streaming determinism contract: pipelining must
  // not change a single bit of any report.
  const auto [estimates_piped, reports_piped] = run(true);
  ASSERT_EQ(estimates_piped.size(), estimates.size());
  for (std::size_t w = 0; w < reports.size(); ++w) {
    EXPECT_EQ(reports[w], reports_piped[w]);
  }
}

TEST(WindowForecaster, UsesWindowLocalLambdaWhenTheEstimateCarriesIt) {
  const QueueingNetwork net = MakeTandemNetwork(4.0, {10.0, 20.0});
  ScenarioEngineOptions forecast_options;
  forecast_options.max_draws = 1;
  forecast_options.tasks_per_draw = 100;
  const ScenarioGrid grid({LoadAxis({1.0, 2.0})});

  WindowEstimate estimate;
  estimate.t0 = 100.0;
  estimate.t1 = 125.0;
  estimate.tasks = 100;  // empirical rate 4.0
  estimate.rates = {4.0, 10.0, 20.0};

  // Legacy estimate (flag off): the forecaster substitutes the empirical rate, so an
  // estimate whose fitted lambda EQUALS the empirical rate forecasts identically with
  // the flag on — the two code paths meet bit-exactly.
  WindowForecaster legacy(net, grid, forecast_options, /*seed=*/7);
  const ScenarioReport by_empirical = legacy.Forecast(estimate);
  estimate.window_local_arrival_rate = true;
  WindowForecaster anchored(net, grid, forecast_options, /*seed=*/7);
  const ScenarioReport by_fitted = anchored.Forecast(estimate);
  EXPECT_EQ(by_empirical, by_fitted);

  // A window-local fitted lambda different from the empirical count (e.g. reflecting
  // latent arrivals) now changes the forecast — the workaround no longer overrides it.
  estimate.rates[0] = 6.0;
  WindowForecaster hotter(net, grid, forecast_options, /*seed=*/7);
  const ScenarioReport by_hotter = hotter.Forecast(estimate);
  EXPECT_GT(by_hotter.cells[0].utilization[1].mean,
            1.2 * by_fitted.cells[0].utilization[1].mean);
}

TEST(WindowForecaster, ConsumesDegradedEstimatesAndCountsThem) {
  // Under overload degradation the estimator hands the forecaster mean-field-only
  // estimates; the grid only needs point rates, so forecasting proceeds — but the
  // operator-facing counter must record how many forecast points were sampler-free.
  const QueueingNetwork net = MakeTandemNetwork(4.0, {10.0, 20.0});
  ScenarioEngineOptions forecast_options;
  forecast_options.max_draws = 1;
  forecast_options.tasks_per_draw = 100;
  const ScenarioGrid grid({LoadAxis({1.0, 2.0})});

  WindowEstimate estimate;
  estimate.t0 = 0.0;
  estimate.t1 = 25.0;
  estimate.tasks = 100;
  estimate.rates = {4.0, 10.0, 20.0};
  estimate.window_local_arrival_rate = true;
  estimate.degraded = true;
  estimate.fit_iterations = 0;

  WindowForecaster forecaster(net, grid, forecast_options, /*seed=*/11);
  const ScenarioReport& report = forecaster.Forecast(estimate);
  EXPECT_EQ(report.cells.size(), 2u);
  EXPECT_EQ(forecaster.DegradedForecasts(), 1u);

  // A degraded estimate forecasts identically to an undegraded one with the same rates:
  // the flag is bookkeeping, not a modeling input.
  WindowForecaster plain(net, grid, forecast_options, /*seed=*/11);
  estimate.degraded = false;
  EXPECT_EQ(plain.Forecast(estimate), forecaster.Reports().front());
  EXPECT_EQ(plain.DegradedForecasts(), 0u);
}

TEST(ScenarioEngine, GuardsOptionAndShapeMisuse) {
  ScenarioEngineOptions bad;
  bad.max_draws = 0;
  EXPECT_THROW(ScenarioEngine{bad}, Error);
  bad = ScenarioEngineOptions{};
  bad.warmup_fraction = 1.0;
  EXPECT_THROW(ScenarioEngine{bad}, Error);

  const QueueingNetwork base = MakeSingleQueueNetwork(2.0, 5.0);
  ScenarioEngine engine;
  // Draw has 3 rates, network has 2 queues.
  EXPECT_THROW(engine.Evaluate(base, ParameterPosterior::FromPoint({2.0, 5.0, 5.0}),
                               ScenarioGrid({LoadAxis({1.0})}), 1),
               Error);
  // Axis targets a queue outside the network.
  EXPECT_THROW(engine.Evaluate(base, ParameterPosterior::FromPoint({2.0, 5.0}),
                               ScenarioGrid({ServiceAxis(5, {1.0})}), 1),
               Error);
}

}  // namespace
}  // namespace qnet
