// Scenario engine: grid expansion, cell realization, posterior-predictive evaluation
// (thread-count bit-equality, analytic-vs-DES agreement, load-axis monotonicity),
// report CSV round-trips, and the streaming forecast hook.

#include "qnet/scenario/scenario_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <sstream>
#include <string>

#include "qnet/dist/gamma.h"
#include "qnet/infer/mg1.h"
#include "qnet/infer/mm1.h"
#include "qnet/model/builders.h"
#include "qnet/scenario/forecast.h"
#include "qnet/scenario/parameter_posterior.h"
#include "qnet/scenario/scenario_spec.h"
#include "qnet/sim/simulator.h"
#include "qnet/stream/replay_stream.h"
#include "qnet/support/check.h"
#include "qnet/support/math.h"
#include "qnet/support/rng.h"
#include "qnet/trace/scenario_report.h"

namespace qnet {
namespace {

ScenarioAxis LoadAxis(std::vector<double> values) {
  ScenarioAxis axis;
  axis.kind = AxisKind::kArrivalScale;
  axis.name = "load";
  axis.values = std::move(values);
  return axis;
}

ScenarioAxis ServiceAxis(int queue, std::vector<double> values) {
  ScenarioAxis axis;
  axis.kind = AxisKind::kServiceScale;
  axis.name = "svc";
  axis.queue = queue;
  axis.values = std::move(values);
  return axis;
}

TEST(ScenarioGrid, ExpandsAxesWithAxisZeroFastest) {
  const ScenarioGrid grid({LoadAxis({1.0, 2.0, 3.0}), ServiceAxis(1, {1.0, 1.5})});
  EXPECT_EQ(grid.NumCells(), 6u);
  EXPECT_EQ(grid.NumAxes(), 2u);
  const ScenarioCell cell = grid.Cell(4);
  EXPECT_EQ(cell.coords[0], 1u);  // axis 0 varies fastest: 4 = 1 + 1*3
  EXPECT_EQ(cell.coords[1], 1u);
  EXPECT_DOUBLE_EQ(cell.values[0], 2.0);
  EXPECT_DOUBLE_EQ(cell.values[1], 1.5);
  EXPECT_THROW(grid.Cell(6), Error);
}

TEST(ScenarioGrid, EmptyAxisListIsABaselineCell) {
  const ScenarioGrid grid({});
  EXPECT_EQ(grid.NumCells(), 1u);
  EXPECT_TRUE(grid.Cell(0).values.empty());
}

TEST(ScenarioGrid, ValidatesAxes) {
  ScenarioAxis bad = LoadAxis({});
  EXPECT_THROW(ScenarioGrid({bad}), Error);
  bad = LoadAxis({-1.0});
  EXPECT_THROW(ScenarioGrid({bad}), Error);
  bad = LoadAxis({1.0});
  bad.name = "";
  EXPECT_THROW(ScenarioGrid({bad}), Error);
  EXPECT_THROW(ScenarioGrid({LoadAxis({1.0}), LoadAxis({2.0})}), Error);  // duplicate name
  ScenarioAxis servers;
  servers.kind = AxisKind::kServerCount;
  servers.name = "servers";
  servers.queue = 1;
  servers.values = {1.5};  // non-integral server count
  EXPECT_THROW(ScenarioGrid({servers}), Error);
}

TEST(ScenarioGrid, RealizeAppliesTransforms) {
  const QueueingNetwork base = MakeTandemNetwork(2.0, {5.0, 7.0});
  ScenarioAxis servers;
  servers.kind = AxisKind::kServerCount;
  servers.name = "servers";
  servers.queue = 2;
  servers.values = {3.0};
  const ScenarioGrid grid({LoadAxis({2.0}), ServiceAxis(1, {1.5}), servers});
  const CellRealization real =
      grid.Realize(base, grid.Cell(0), std::vector<double>{2.0, 5.0, 7.0});
  EXPECT_DOUBLE_EQ(real.rates[0], 4.0);   // lambda doubled
  EXPECT_DOUBLE_EQ(real.rates[1], 7.5);   // mu_1 scaled 1.5x
  EXPECT_DOUBLE_EQ(real.rates[2], 7.0);   // untouched per-server rate
  EXPECT_EQ(real.servers[2], 3);
  const auto rates = real.net.ExponentialRates();
  EXPECT_DOUBLE_EQ(rates[0], 4.0);
  EXPECT_DOUBLE_EQ(rates[1], 7.5);
  EXPECT_DOUBLE_EQ(rates[2], 21.0);  // pooled DES rate c * mu
}

TEST(ScenarioGrid, RealizeAppliesRoutingEdits) {
  // Two parallel replicas behind a uniform dispatch; scaling (state 0 -> queue 1) by 3
  // shifts the split from 1/2-1/2 to 3/4-1/4.
  ThreeTierConfig config;
  config.tier_sizes = {2};
  QueueingNetwork base = MakeThreeTierNetwork(config);
  ScenarioAxis route;
  route.kind = AxisKind::kRoutingScale;
  route.name = "shift";
  route.queue = 1;
  route.state = 0;
  route.values = {3.0};
  const ScenarioGrid grid({route});
  const CellRealization real =
      grid.Realize(base, grid.Cell(0), std::vector<double>{10.0, 5.0, 5.0});
  const Fsm& fsm = real.net.GetFsm();
  EXPECT_NEAR(fsm.Emission(0, 1), 0.75, 1e-12);
  EXPECT_NEAR(fsm.Emission(0, 2), 0.25, 1e-12);
}

TEST(ParameterPosterior, SourcesAgreeOnShapeAndMoments) {
  StemResult stem;
  stem.rate_trace = {{2.0, 5.0}, {2.2, 5.5}, {1.8, 4.5}, {2.0, 5.0}};
  const ParameterPosterior posterior = ParameterPosterior::FromStem(stem, 1);
  EXPECT_EQ(posterior.NumDraws(), 3u);
  EXPECT_EQ(posterior.NumQueues(), 2);
  EXPECT_NEAR(posterior.MeanRates()[1], 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(posterior.RateQuantile(0.0)[1], 4.5);
  EXPECT_DOUBLE_EQ(posterior.RateQuantile(1.0)[1], 5.5);
  EXPECT_THROW(ParameterPosterior::FromStem(stem, 4), Error);

  const ParameterPosterior point = ParameterPosterior::FromPoint({2.0, 5.0});
  EXPECT_EQ(point.NumDraws(), 1u);
  EXPECT_DOUBLE_EQ(point.Draw(0)[1], 5.0);
  EXPECT_THROW(ParameterPosterior::FromPoint({2.0}), Error);       // no queue rate
  EXPECT_THROW(ParameterPosterior::FromPoint({2.0, -1.0}), Error); // nonpositive
}

ScenarioReport EvaluateTandem(std::size_t threads, bool crn = false) {
  const QueueingNetwork base = MakeTandemNetwork(1.5, {6.0, 4.0});
  StemResult stem;
  stem.rate_trace = {{1.5, 6.0, 4.0}, {1.4, 6.3, 4.2}, {1.6, 5.8, 3.9}};
  ScenarioEngineOptions options;
  options.max_draws = 3;
  options.tasks_per_draw = 200;
  options.threads = threads;
  options.common_random_numbers = crn;
  ScenarioEngine engine(options);
  return engine.Evaluate(base, ParameterPosterior::FromStem(stem, 0),
                         ScenarioGrid({LoadAxis({1.0, 1.5, 2.0}), ServiceAxis(2, {1.0, 2.0})}),
                         /*seed=*/42);
}

TEST(ScenarioEngine, ReportsBitIdenticalAcrossThreadCounts) {
  const ScenarioReport one = EvaluateTandem(1);
  const ScenarioReport two = EvaluateTandem(2);
  const ScenarioReport four = EvaluateTandem(4);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
  // The serialized bytes are the determinism contract CI cares about — compare them too.
  std::ostringstream s1, s4;
  WriteScenarioReport(s1, one);
  WriteScenarioReport(s4, four);
  EXPECT_EQ(s1.str(), s4.str());
}

TEST(ScenarioEngine, CommonRandomNumbersBitIdenticalAcrossThreadCounts) {
  const ScenarioReport one = EvaluateTandem(1, /*crn=*/true);
  const ScenarioReport four = EvaluateTandem(4, /*crn=*/true);
  EXPECT_EQ(one, four);
}

TEST(ScenarioEngine, AgreesWithAnalyticOnMm1Cells) {
  // Single M/M/1 queue, moderate load: the DES mean response must land on the
  // steady-state formula within sampling error.
  const QueueingNetwork base = MakeSingleQueueNetwork(2.0, 5.0);
  ScenarioEngineOptions options;
  options.max_draws = 1;
  options.tasks_per_draw = 20000;
  options.warmup_fraction = 0.25;
  ScenarioEngine engine(options);
  const ScenarioReport report =
      engine.Evaluate(base, ParameterPosterior::FromPoint({2.0, 5.0}),
                      ScenarioGrid({LoadAxis({1.0, 1.5})}), 7);
  for (const CellResult& cell : report.cells) {
    ASSERT_TRUE(cell.analytic_valid);
    ASSERT_TRUE(cell.analytic_stable);
    const double lambda = 2.0 * cell.axis_values[0];
    const Mm1Metrics mm1 = AnalyzeMm1(lambda, 5.0);
    EXPECT_NEAR(cell.analytic_mean_response, mm1.mean_response, 1e-12);
    EXPECT_NEAR(cell.mean_response.mean, mm1.mean_response, 0.12 * mm1.mean_response);
    EXPECT_NEAR(cell.utilization[1].mean, mm1.utilization, 0.1);
  }
}

TEST(ScenarioEngine, FlagsSaturatedCellsAnalytically) {
  const QueueingNetwork base = MakeSingleQueueNetwork(2.0, 5.0);
  ScenarioEngineOptions options;
  options.max_draws = 1;
  options.tasks_per_draw = 200;
  ScenarioEngine engine(options);
  const ScenarioReport report =
      engine.Evaluate(base, ParameterPosterior::FromPoint({2.0, 5.0}),
                      ScenarioGrid({LoadAxis({1.0, 3.0})}), 7);
  EXPECT_TRUE(report.cells[0].analytic_stable);
  EXPECT_FALSE(report.cells[1].analytic_stable);  // rho = 6/5
  EXPECT_TRUE(std::isnan(report.cells[1].analytic_mean_response));
}

TEST(AnalyzeCellAnalytic, Mg1BranchMatchesDesOnGammaService) {
  // Gamma(k=4) service (SCV 1/4): Pollaczek-Khinchine against a long DES run of the
  // same network — the M/G/1 leg of the cross-check.
  QueueingNetwork net = MakeSingleQueueNetwork(2.0, 5.0);
  net.SetService(1, std::make_unique<GammaDist>(4.0, 20.0));  // mean 0.2 (shape 4, rate 20)
  const AnalyticPrediction analytic = AnalyzeCellAnalytic(net);
  ASSERT_TRUE(analytic.stable);
  const Mg1Metrics mg1 = AnalyzeMg1(2.0, net.Service(1));
  EXPECT_NEAR(analytic.mean_response, mg1.mean_response, 1e-12);
  EXPECT_NEAR(analytic.utilization[1], 0.4, 1e-9);

  Rng rng(11);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(2.0, 20000), rng);
  RunningStat response;
  for (int k = log.NumTasks() / 4; k < log.NumTasks(); ++k) {
    response.Add(log.TaskExitTime(k) - log.TaskEntryTime(k));
  }
  EXPECT_NEAR(response.Mean(), analytic.mean_response, 0.12 * analytic.mean_response);
}

TEST(AnalyzeCellAnalytic, Mg1OnExponentialEqualsMm1) {
  const QueueingNetwork net = MakeSingleQueueNetwork(2.0, 5.0);
  const Mg1Metrics mg1 = AnalyzeMg1(2.0, net.Service(1));
  const Mm1Metrics mm1 = AnalyzeMm1(2.0, 5.0);
  EXPECT_NEAR(mg1.mean_response, mm1.mean_response, 1e-12);
}

TEST(ScenarioEngine, UtilizationAndLatencyMonotoneAlongLoadAxis) {
  // Pure load axis under common random numbers: compressing the same arrival uniforms
  // against the same service draws can only lengthen queues (Lindley monotonicity), so
  // the sweep is monotone exactly, not just statistically.
  const QueueingNetwork base = MakeTandemNetwork(1.5, {6.0, 4.0});
  ScenarioEngineOptions options;
  options.max_draws = 2;
  options.tasks_per_draw = 1000;
  options.common_random_numbers = true;
  ScenarioEngine engine(options);
  StemResult stem;
  stem.rate_trace = {{1.5, 6.0, 4.0}, {1.45, 6.2, 4.1}};
  const ScenarioReport report =
      engine.Evaluate(base, ParameterPosterior::FromStem(stem, 0),
                      ScenarioGrid({LoadAxis({0.5, 1.0, 1.5, 2.0})}), 13);
  for (std::size_t i = 1; i < report.cells.size(); ++i) {
    EXPECT_GE(report.cells[i].mean_response.mean, report.cells[i - 1].mean_response.mean);
    EXPECT_GE(report.cells[i].tail_response.mean, report.cells[i - 1].tail_response.mean);
    for (int q = 1; q < report.num_queues; ++q) {
      EXPECT_GE(report.cells[i].utilization[static_cast<std::size_t>(q)].mean,
                report.cells[i - 1].utilization[static_cast<std::size_t>(q)].mean);
    }
  }
}

TEST(ScenarioEngine, ServerUpgradeReducesLatencyAtTheBottleneck) {
  const QueueingNetwork base = MakeTandemNetwork(3.0, {4.0, 9.0});  // queue 1 is hot
  ScenarioAxis servers;
  servers.kind = AxisKind::kServerCount;
  servers.name = "servers";
  servers.queue = 1;
  servers.values = {1.0, 2.0};
  ScenarioEngineOptions options;
  options.max_draws = 1;
  options.tasks_per_draw = 4000;
  options.common_random_numbers = true;
  ScenarioEngine engine(options);
  const ScenarioReport report =
      engine.Evaluate(base, ParameterPosterior::FromPoint({3.0, 4.0, 9.0}),
                      ScenarioGrid({servers}), 19);
  EXPECT_EQ(report.cells[0].bottleneck_queue, 1);
  EXPECT_LT(report.cells[1].mean_response.mean, report.cells[0].mean_response.mean);
  EXPECT_LT(report.cells[1].utilization[1].mean, report.cells[0].utilization[1].mean);
}

TEST(ScenarioReportCsv, RoundTripsBitExactly) {
  const ScenarioReport report = EvaluateTandem(2);
  std::stringstream buffer;
  WriteScenarioReport(buffer, report);
  const ScenarioReport reread = ReadScenarioReport(buffer);
  EXPECT_EQ(report, reread);
  // And the re-serialization is byte-identical.
  std::ostringstream again;
  WriteScenarioReport(again, reread);
  std::ostringstream first;
  WriteScenarioReport(first, report);
  EXPECT_EQ(first.str(), again.str());
}

TEST(ScenarioReportCsv, RoundTripsNanAnalyticAndFiles) {
  const QueueingNetwork base = MakeSingleQueueNetwork(2.0, 5.0);
  ScenarioEngineOptions options;
  options.max_draws = 1;
  options.tasks_per_draw = 100;
  ScenarioEngine engine(options);
  const ScenarioReport report =
      engine.Evaluate(base, ParameterPosterior::FromPoint({2.0, 5.0}),
                      ScenarioGrid({LoadAxis({3.0})}), 3);
  ASSERT_TRUE(std::isnan(report.cells[0].analytic_mean_response));
  // Report equality treats two NaN analytic fields as equal (saturated cells are NaN by
  // design), so whole-report comparisons work on saturated grids too.
  EXPECT_EQ(report, report);
  const std::string path = ::testing::TempDir() + "/qnet_scenario_report.csv";
  WriteScenarioReportFile(path, report);
  const ScenarioReport reread = ReadScenarioReportFile(path);
  EXPECT_TRUE(std::isnan(reread.cells[0].analytic_mean_response));
  EXPECT_EQ(report, reread);
  std::remove(path.c_str());
}

TEST(ScenarioReportCsv, RejectsCorruptInput) {
  std::istringstream missing("# cells=1\n");
  EXPECT_THROW(ReadScenarioReport(missing), Error);
  const ScenarioReport report = EvaluateTandem(1);
  std::ostringstream buffer;
  WriteScenarioReport(buffer, report);
  std::string text = buffer.str();
  text.pop_back();                 // drop trailing newline…
  text += ",999\n";                // …and append a stray field to the last row
  std::istringstream corrupt(text);
  EXPECT_THROW(ReadScenarioReport(corrupt), Error);
  // A negative seed must be rejected, not silently wrapped by stoull.
  std::string negative_seed = buffer.str();
  const std::size_t at = negative_seed.find("# seed=");
  ASSERT_NE(at, std::string::npos);
  negative_seed.insert(at + 7, "-");
  std::istringstream negative(negative_seed);
  EXPECT_THROW(ReadScenarioReport(negative), Error);
}

TEST(WindowForecaster, HooksIntoStreamingEstimatorDeterministically) {
  const QueueingNetwork net = MakeTandemNetwork(4.0, {10.0, 20.0});
  Rng rng(23);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(4.0, 600), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.4;
  const Observation obs = scheme.Apply(truth, rng);

  ScenarioEngineOptions forecast_options;
  forecast_options.max_draws = 1;
  forecast_options.tasks_per_draw = 100;
  // CRN makes the 1x-vs-2x comparison exactly monotone even at 100 tasks per draw.
  forecast_options.common_random_numbers = true;
  const ScenarioGrid grid({LoadAxis({1.0, 2.0})});

  const auto run = [&](bool pipeline) {
    WindowForecaster forecaster(net, grid, forecast_options, /*seed=*/5);
    StreamingEstimatorOptions options;
    options.window.window_duration = 25.0;
    options.stem.iterations = 20;
    options.stem.burn_in = 5;
    options.stem.wait_sweeps = 0;
    options.pipeline = pipeline;
    options.on_window = forecaster.Hook();
    std::vector<double> init(static_cast<std::size_t>(net.NumQueues()), 1.0);
    init[0] = 4.0;
    StreamingEstimator estimator(init, /*seed=*/9, options);
    LogReplayStream stream(truth, obs);
    const auto estimates = estimator.Run(stream);
    return std::make_pair(estimates, forecaster.Reports());
  };

  const auto [estimates, reports] = run(false);
  ASSERT_FALSE(estimates.empty());
  ASSERT_EQ(reports.size(), estimates.size());  // merged-tail re-fit replaced, not appended
  for (std::size_t w = 0; w < reports.size(); ++w) {
    EXPECT_EQ(reports[w].cells.size(), 2u);
    // Forecast at the window's own rates is ordered: doubling load hurts (exact under
    // common random numbers).
    EXPECT_GE(reports[w].cells[1].mean_response.mean,
              reports[w].cells[0].mean_response.mean);
    // The forecast lambda is the window's EMPIRICAL arrival rate (~4 here), not the
    // absolute-time-anchored StEM iterate (which decays toward 0 over the stream):
    // baseline utilization must be substantive, and under CRN doubling load compresses
    // the same busy time into a much shorter horizon (short of exactly 2x only by the
    // backlog extending past the last arrival).
    const double util_1x = reports[w].cells[0].utilization[1].mean;
    const double util_2x = reports[w].cells[1].utilization[1].mean;
    EXPECT_GT(util_1x, 0.15);  // lambda ~4 against mu ~10
    EXPECT_GT(util_2x, 1.4 * util_1x);
  }
  // The forecast sequence inherits the streaming determinism contract: pipelining must
  // not change a single bit of any report.
  const auto [estimates_piped, reports_piped] = run(true);
  ASSERT_EQ(estimates_piped.size(), estimates.size());
  for (std::size_t w = 0; w < reports.size(); ++w) {
    EXPECT_EQ(reports[w], reports_piped[w]);
  }
}

TEST(WindowForecaster, UsesWindowLocalLambdaWhenTheEstimateCarriesIt) {
  const QueueingNetwork net = MakeTandemNetwork(4.0, {10.0, 20.0});
  ScenarioEngineOptions forecast_options;
  forecast_options.max_draws = 1;
  forecast_options.tasks_per_draw = 100;
  const ScenarioGrid grid({LoadAxis({1.0, 2.0})});

  WindowEstimate estimate;
  estimate.t0 = 100.0;
  estimate.t1 = 125.0;
  estimate.tasks = 100;  // empirical rate 4.0
  estimate.rates = {4.0, 10.0, 20.0};

  // Legacy estimate (flag off): the forecaster substitutes the empirical rate, so an
  // estimate whose fitted lambda EQUALS the empirical rate forecasts identically with
  // the flag on — the two code paths meet bit-exactly.
  WindowForecaster legacy(net, grid, forecast_options, /*seed=*/7);
  const ScenarioReport by_empirical = legacy.Forecast(estimate);
  estimate.window_local_arrival_rate = true;
  WindowForecaster anchored(net, grid, forecast_options, /*seed=*/7);
  const ScenarioReport by_fitted = anchored.Forecast(estimate);
  EXPECT_EQ(by_empirical, by_fitted);

  // A window-local fitted lambda different from the empirical count (e.g. reflecting
  // latent arrivals) now changes the forecast — the workaround no longer overrides it.
  estimate.rates[0] = 6.0;
  WindowForecaster hotter(net, grid, forecast_options, /*seed=*/7);
  const ScenarioReport by_hotter = hotter.Forecast(estimate);
  EXPECT_GT(by_hotter.cells[0].utilization[1].mean,
            1.2 * by_fitted.cells[0].utilization[1].mean);
}

TEST(WindowForecaster, ConsumesDegradedEstimatesAndCountsThem) {
  // Under overload degradation the estimator hands the forecaster mean-field-only
  // estimates; the grid only needs point rates, so forecasting proceeds — but the
  // operator-facing counter must record how many forecast points were sampler-free.
  const QueueingNetwork net = MakeTandemNetwork(4.0, {10.0, 20.0});
  ScenarioEngineOptions forecast_options;
  forecast_options.max_draws = 1;
  forecast_options.tasks_per_draw = 100;
  const ScenarioGrid grid({LoadAxis({1.0, 2.0})});

  WindowEstimate estimate;
  estimate.t0 = 0.0;
  estimate.t1 = 25.0;
  estimate.tasks = 100;
  estimate.rates = {4.0, 10.0, 20.0};
  estimate.window_local_arrival_rate = true;
  estimate.degraded = true;
  estimate.fit_iterations = 0;

  WindowForecaster forecaster(net, grid, forecast_options, /*seed=*/11);
  const ScenarioReport& report = forecaster.Forecast(estimate);
  EXPECT_EQ(report.cells.size(), 2u);
  EXPECT_EQ(forecaster.DegradedForecasts(), 1u);

  // A degraded estimate forecasts identically to an undegraded one with the same rates:
  // the flag is bookkeeping, not a modeling input.
  WindowForecaster plain(net, grid, forecast_options, /*seed=*/11);
  estimate.degraded = false;
  EXPECT_EQ(plain.Forecast(estimate), forecaster.Reports().front());
  EXPECT_EQ(plain.DegradedForecasts(), 0u);
}

// ---------------------------------------------------------------------------------------
// Clone-free fast-path pins. The overlay/arena engine must reproduce the historical
// clone-per-cell evaluation bit-for-bit: against golden reports generated by the pre-PR
// engine, against an in-test reference evaluator built from the public clone APIs, warm
// (reused workspaces) against cold, and across thread counts.

ScenarioReport EvaluateThreeTierGoldenFixture(std::size_t threads) {
  ThreeTierConfig config;
  config.tier_sizes = {2, 1};
  const QueueingNetwork base = MakeThreeTierNetwork(config);
  StemResult stem;
  stem.rate_trace = {{10.0, 5.0, 5.0, 12.0}, {9.5, 5.2, 4.9, 11.5}};
  ScenarioAxis route;
  route.kind = AxisKind::kRoutingScale;
  route.name = "shift";
  route.queue = 1;
  route.state = 0;
  route.values = {1.0, 3.0};
  ScenarioAxis servers;
  servers.kind = AxisKind::kServerCount;
  servers.name = "servers";
  servers.queue = 3;
  servers.values = {1.0, 2.0};
  ScenarioAxis load;
  load.kind = AxisKind::kArrivalScale;
  load.name = "load";
  load.values = {0.8, 1.2};
  ScenarioEngineOptions options;
  options.max_draws = 2;
  options.tasks_per_draw = 128;
  options.common_random_numbers = true;
  options.threads = threads;
  ScenarioEngine engine(options);
  return engine.Evaluate(base, ParameterPosterior::FromStem(stem, 0),
                         ScenarioGrid({route, servers, load}), /*seed=*/7);
}

TEST(ScenarioEngineGolden, TandemReportMatchesPreOverlayGolden) {
  const ScenarioReport golden = ReadScenarioReportFile(
      std::string(QNET_TEST_DATA_DIR) + "/scenario_golden_tandem.csv");
  EXPECT_EQ(EvaluateTandem(1), golden);
}

TEST(ScenarioEngineGolden, ThreeTierReportMatchesPreOverlayGoldenAcrossThreads) {
  // Exercises every axis kind (routing edit, server count, load) plus CRN against the
  // pre-overlay engine's output, for each thread count the TSan job runs under.
  const ScenarioReport golden = ReadScenarioReportFile(
      std::string(QNET_TEST_DATA_DIR) + "/scenario_golden_threetier.csv");
  EXPECT_EQ(EvaluateThreeTierGoldenFixture(1), golden);
  EXPECT_EQ(EvaluateThreeTierGoldenFixture(2), golden);
  EXPECT_EQ(EvaluateThreeTierGoldenFixture(4), golden);
}

// Reference evaluation of one cell through the public clone APIs — a line-for-line
// transcription of the historical EvaluateCell, kept as an executable specification of
// what the overlay fast path must reproduce.
CellResult ReferenceEvaluateCell(const QueueingNetwork& base,
                                 const ParameterPosterior& posterior,
                                 const ScenarioGrid& grid, std::size_t cell_index,
                                 std::uint64_t seed, std::size_t draws,
                                 const ScenarioEngineOptions& options) {
  const ScenarioCell cell = grid.Cell(cell_index);
  const auto num_queues = static_cast<std::size_t>(base.NumQueues());

  CellResult result;
  result.cell = cell_index;
  result.axis_values = cell.values;

  std::vector<double> means(draws), tails(draws);
  std::vector<std::vector<double>> utils(draws), qlens(draws);
  for (std::size_t d = 0; d < draws; ++d) {
    const std::size_t source = d * posterior.NumDraws() / draws;
    const CellRealization real = grid.Realize(base, cell, posterior.Draw(source));
    const std::uint64_t salt_base =
        options.common_random_numbers ? seed : MixSeed(seed, cell_index);
    Rng rng(MixSeed(salt_base, d));
    const EventLog log = SimulateWorkload(
        real.net, PoissonArrivals(real.rates[0], options.tasks_per_draw), rng);

    const int num_tasks = log.NumTasks();
    const int warm = static_cast<int>(static_cast<double>(num_tasks) * options.warmup_fraction);
    std::vector<double> responses;
    double horizon = 0.0;
    for (int k = 0; k < num_tasks; ++k) {
      const double exit = log.TaskExitTime(k);
      horizon = std::max(horizon, exit);
      if (k >= warm) {
        responses.push_back(exit - log.TaskEntryTime(k));
      }
    }
    means[d] = Mean(responses);
    tails[d] = Quantile(responses, options.tail_quantile);
    const std::vector<double> busy = log.PerQueueServiceSum();
    utils[d].assign(num_queues, 0.0);
    qlens[d].assign(num_queues, 0.0);
    for (std::size_t q = 1; q < num_queues; ++q) {
      utils[d][q] = busy[q] / horizon;
      double wait_sum = 0.0;
      for (const EventId e : log.QueueOrder(static_cast<int>(q))) {
        wait_sum += log.WaitTime(e);
      }
      qlens[d][q] = wait_sum / horizon;
    }
  }

  std::vector<double> column(draws);
  const auto reduce = [&](const auto& get) {
    for (std::size_t d = 0; d < draws; ++d) {
      column[d] = get(d);
    }
    MetricBand band;
    band.mean = Mean(column);
    band.lo = Quantile(column, options.band_lo);
    band.hi = Quantile(column, options.band_hi);
    return band;
  };
  result.mean_response = reduce([&](std::size_t d) { return means[d]; });
  result.tail_response = reduce([&](std::size_t d) { return tails[d]; });
  result.utilization.resize(num_queues);
  result.queue_length.resize(num_queues);
  for (std::size_t q = 1; q < num_queues; ++q) {
    result.utilization[q] = reduce([&](std::size_t d) { return utils[d][q]; });
    result.queue_length[q] = reduce([&](std::size_t d) { return qlens[d][q]; });
  }

  result.bottleneck_ranking.resize(num_queues - 1);
  std::iota(result.bottleneck_ranking.begin(), result.bottleneck_ranking.end(), 1);
  std::sort(result.bottleneck_ranking.begin(), result.bottleneck_ranking.end(),
            [&](int a, int b) {
              const double ua = result.utilization[static_cast<std::size_t>(a)].mean;
              const double ub = result.utilization[static_cast<std::size_t>(b)].mean;
              return ua != ub ? ua > ub : a < b;
            });
  result.bottleneck_queue = result.bottleneck_ranking.front();

  if (options.analytic) {
    const CellRealization mean_cell = grid.Realize(base, cell, posterior.MeanRates());
    const AnalyticPrediction analytic =
        AnalyzeCellAnalytic(mean_cell.net, mean_cell.servers, mean_cell.rates);
    result.analytic_valid = true;
    result.analytic_stable = analytic.stable;
    result.analytic_mean_response = analytic.mean_response;
  }
  return result;
}

TEST(ScenarioEngine, OverlayFastPathMatchesCloneReferenceBitwise) {
  ThreeTierConfig config;
  config.tier_sizes = {2, 1};
  const QueueingNetwork base = MakeThreeTierNetwork(config);
  StemResult stem;
  stem.rate_trace = {{10.0, 5.0, 5.0, 12.0}, {9.5, 5.2, 4.9, 11.5}, {10.2, 4.8, 5.1, 12.4}};
  const ParameterPosterior posterior = ParameterPosterior::FromStem(stem, 0);
  // Two routing axes on the same state: the second must compound on the first's
  // renormalized row, exactly like sequential SetWeightedEmission calls on a clone.
  ScenarioAxis shift1;
  shift1.kind = AxisKind::kRoutingScale;
  shift1.name = "shift1";
  shift1.queue = 1;
  shift1.state = 0;
  shift1.values = {2.0};
  ScenarioAxis shift2;
  shift2.kind = AxisKind::kRoutingScale;
  shift2.name = "shift2";
  shift2.queue = 2;
  shift2.state = 0;
  shift2.values = {0.5, 4.0};
  ScenarioAxis servers;
  servers.kind = AxisKind::kServerCount;
  servers.name = "servers";
  servers.queue = 3;
  servers.values = {1.0, 3.0};
  const ScenarioGrid grid({shift1, shift2, servers});

  ScenarioEngineOptions options;
  options.max_draws = 2;
  options.tasks_per_draw = 96;
  ScenarioEngine engine(options);
  const ScenarioReport report =
      engine.Evaluate(base, posterior, grid, /*seed=*/99);
  ASSERT_EQ(report.cells.size(), grid.NumCells());
  for (std::size_t i = 0; i < grid.NumCells(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(report.cells[i], ReferenceEvaluateCell(base, posterior, grid, i,
                                                     /*seed=*/99, report.draws, options));
  }
}

TEST(ScenarioEngine, WarmWorkspacesReproduceColdEvaluation) {
  // Second Evaluate on the same engine runs entirely on warm per-worker arenas; the
  // report must not care.
  const QueueingNetwork base = MakeTandemNetwork(1.5, {6.0, 4.0});
  StemResult stem;
  stem.rate_trace = {{1.5, 6.0, 4.0}, {1.4, 6.3, 4.2}, {1.6, 5.8, 3.9}};
  const ParameterPosterior posterior = ParameterPosterior::FromStem(stem, 0);
  const ScenarioGrid grid({LoadAxis({1.0, 1.5, 2.0}), ServiceAxis(2, {1.0, 2.0})});
  ScenarioEngineOptions options;
  options.max_draws = 3;
  options.tasks_per_draw = 200;
  options.threads = 2;
  ScenarioEngine engine(options);
  const ScenarioReport cold = engine.Evaluate(base, posterior, grid, 42);
  const ScenarioReport warm = engine.Evaluate(base, posterior, grid, 42);
  EXPECT_EQ(cold, warm);
  // Different seed on warm workspaces still works (no stale state leaks through).
  const ScenarioReport other = engine.Evaluate(base, posterior, grid, 43);
  EXPECT_NE(other, warm);
}

TEST(ScenarioEngine, GuardsOptionAndShapeMisuse) {
  ScenarioEngineOptions bad;
  bad.max_draws = 0;
  EXPECT_THROW(ScenarioEngine{bad}, Error);
  bad = ScenarioEngineOptions{};
  bad.warmup_fraction = 1.0;
  EXPECT_THROW(ScenarioEngine{bad}, Error);

  const QueueingNetwork base = MakeSingleQueueNetwork(2.0, 5.0);
  ScenarioEngine engine;
  // Draw has 3 rates, network has 2 queues.
  EXPECT_THROW(engine.Evaluate(base, ParameterPosterior::FromPoint({2.0, 5.0, 5.0}),
                               ScenarioGrid({LoadAxis({1.0})}), 1),
               Error);
  // Axis targets a queue outside the network.
  EXPECT_THROW(engine.Evaluate(base, ParameterPosterior::FromPoint({2.0, 5.0}),
                               ScenarioGrid({ServiceAxis(5, {1.0})}), 1),
               Error);
}

}  // namespace
}  // namespace qnet
