// Tests for the remaining support utilities: command-line flags, contract macros, and the
// stopwatch.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "qnet/support/check.h"
#include "qnet/support/flags.h"
#include "qnet/support/stopwatch.h"

namespace qnet {
namespace {

Flags MakeFlags(std::vector<const char*> args) {
  args.insert(args.begin(), "binary");
  return Flags(static_cast<int>(args.size()), args.data());
}

TEST(Flags, ParsesEqualsAndSpaceSeparatedValues) {
  const Flags flags = MakeFlags({"--tasks=100", "--rate", "2.5", "--name", "web"});
  EXPECT_EQ(flags.GetInt("tasks", 0), 100);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.0), 2.5);
  EXPECT_EQ(flags.GetString("name", ""), "web");
  EXPECT_TRUE(flags.Has("tasks"));
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(Flags, BareSwitchesAreBooleanTrue) {
  const Flags flags = MakeFlags({"--verbose", "--dry-run", "--count=3"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.GetBool("dry-run", false));
  EXPECT_FALSE(flags.GetBool("other", false));
  EXPECT_TRUE(flags.GetBool("other", true));
  EXPECT_EQ(flags.GetInt("count", 0), 3);
}

TEST(Flags, SwitchFollowedByFlagDoesNotSwallowIt) {
  const Flags flags = MakeFlags({"--fast", "--tasks", "7"});
  EXPECT_TRUE(flags.GetBool("fast", false));
  EXPECT_EQ(flags.GetInt("tasks", 0), 7);
}

TEST(Flags, PositionalArgumentsPreserved) {
  const Flags flags = MakeFlags({"input.csv", "--n=1", "output.csv"});
  ASSERT_EQ(flags.Positional().size(), 2u);
  EXPECT_EQ(flags.Positional()[0], "input.csv");
  EXPECT_EQ(flags.Positional()[1], "output.csv");
}

TEST(Flags, DefaultsWhenAbsentAndTypeGuards) {
  const Flags flags = MakeFlags({"--text", "abc"});
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 1.5), 1.5);
  EXPECT_THROW(flags.GetInt("text", 0), Error);
  EXPECT_THROW(flags.GetDouble("text", 0.0), Error);
}

TEST(Flags, BooleanSpellings) {
  const Flags flags = MakeFlags({"--a=true", "--b=1", "--c=yes", "--d=false", "--e=0"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_FALSE(flags.GetBool("e", true));
}

TEST(Check, ThrowsWithExpressionAndMessage) {
  try {
    QNET_CHECK(1 == 2, "context ", 42);
    FAIL() << "QNET_CHECK did not throw";
  } catch (const Error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
    EXPECT_NE(what.find("test_support_misc"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(QNET_CHECK(true));
  EXPECT_NO_THROW(QNET_CHECK(2 > 1, "never shown"));
}

TEST(Check, MessageIsLazy) {
  // The message expression must not be evaluated when the condition holds.
  int evaluations = 0;
  const auto side_effect = [&]() {
    ++evaluations;
    return "msg";
  };
  QNET_CHECK(true, side_effect());
  // The current implementation builds the message eagerly inside the failure branch only.
  EXPECT_EQ(evaluations, 0);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double first = watch.ElapsedMillis();
  EXPECT_GE(first, 15.0);
  EXPECT_LT(first, 2000.0);
  watch.Reset();
  EXPECT_LT(watch.ElapsedMillis(), first);
  EXPECT_NEAR(watch.ElapsedSeconds() * 1e3, watch.ElapsedMillis(), 5.0);
}

}  // namespace
}  // namespace qnet
