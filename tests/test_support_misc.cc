// Tests for the remaining support utilities: command-line flags, contract macros, the
// stopwatch, and the stream-partitioning task hash.

#include <bit>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "qnet/stream/task_record.h"
#include "qnet/support/check.h"
#include "qnet/support/flags.h"
#include "qnet/support/rng.h"
#include "qnet/support/stopwatch.h"
#include "qnet/support/task_hash.h"

namespace qnet {
namespace {

Flags MakeFlags(std::vector<const char*> args) {
  args.insert(args.begin(), "binary");
  return Flags(static_cast<int>(args.size()), args.data());
}

TEST(Flags, ParsesEqualsAndSpaceSeparatedValues) {
  const Flags flags = MakeFlags({"--tasks=100", "--rate", "2.5", "--name", "web"});
  EXPECT_EQ(flags.GetInt("tasks", 0), 100);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 0.0), 2.5);
  EXPECT_EQ(flags.GetString("name", ""), "web");
  EXPECT_TRUE(flags.Has("tasks"));
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(Flags, BareSwitchesAreBooleanTrue) {
  const Flags flags = MakeFlags({"--verbose", "--dry-run", "--count=3"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.GetBool("dry-run", false));
  EXPECT_FALSE(flags.GetBool("other", false));
  EXPECT_TRUE(flags.GetBool("other", true));
  EXPECT_EQ(flags.GetInt("count", 0), 3);
}

TEST(Flags, SwitchFollowedByFlagDoesNotSwallowIt) {
  const Flags flags = MakeFlags({"--fast", "--tasks", "7"});
  EXPECT_TRUE(flags.GetBool("fast", false));
  EXPECT_EQ(flags.GetInt("tasks", 0), 7);
}

TEST(Flags, PositionalArgumentsPreserved) {
  const Flags flags = MakeFlags({"input.csv", "--n=1", "output.csv"});
  ASSERT_EQ(flags.Positional().size(), 2u);
  EXPECT_EQ(flags.Positional()[0], "input.csv");
  EXPECT_EQ(flags.Positional()[1], "output.csv");
}

TEST(Flags, DefaultsWhenAbsentAndTypeGuards) {
  const Flags flags = MakeFlags({"--text", "abc"});
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 1.5), 1.5);
  EXPECT_THROW(flags.GetInt("text", 0), Error);
  EXPECT_THROW(flags.GetDouble("text", 0.0), Error);
}

TEST(Flags, BooleanSpellings) {
  const Flags flags = MakeFlags({"--a=true", "--b=1", "--c=yes", "--d=false", "--e=0"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_FALSE(flags.GetBool("e", true));
}

TEST(Check, ThrowsWithExpressionAndMessage) {
  try {
    QNET_CHECK(1 == 2, "context ", 42);
    FAIL() << "QNET_CHECK did not throw";
  } catch (const Error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
    EXPECT_NE(what.find("test_support_misc"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(QNET_CHECK(true));
  EXPECT_NO_THROW(QNET_CHECK(2 > 1, "never shown"));
}

TEST(Check, MessageIsLazy) {
  // The message expression must not be evaluated when the condition holds.
  int evaluations = 0;
  const auto side_effect = [&]() {
    ++evaluations;
    return "msg";
  };
  QNET_CHECK(true, side_effect());
  // The current implementation builds the message eagerly inside the failure branch only.
  EXPECT_EQ(evaluations, 0);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double first = watch.ElapsedMillis();
  EXPECT_GE(first, 15.0);
  EXPECT_LT(first, 2000.0);
  watch.Reset();
  EXPECT_LT(watch.ElapsedMillis(), first);
  EXPECT_NEAR(watch.ElapsedSeconds() * 1e3, watch.ElapsedMillis(), 5.0);
}

// --- TaskHash ----------------------------------------------------------------------------

TaskRecord HashFixtureRecord(double entry = 1.5, int visits = 2) {
  TaskRecord record;
  record.entry_time = entry;
  double t = entry;
  for (int i = 0; i < visits; ++i) {
    TaskVisit visit;
    visit.state = i;
    visit.queue = i + 1;
    visit.arrival = t;
    t += 0.25;
    visit.departure = t;
    record.visits.push_back(visit);
  }
  return record;
}

TEST(TaskHash, GoldenValuesPinCrossPlatformStability) {
  // The hash is pure 64-bit integer arithmetic over IEEE-754 bit patterns, so these
  // values must reproduce on every platform and standard library. A change here breaks
  // every external partitioner's placement — bump deliberately or never.
  EXPECT_EQ(TaskHash(HashFixtureRecord()), 0xbccbcad7fb12d1edULL);
  EXPECT_EQ(TaskHash(HashFixtureRecord(2.5)), 0x6310d284114f6b71ULL);
  EXPECT_EQ(TaskHash(HashFixtureRecord(1.5, 3)), 0x1d8a964f95bb2668ULL);
  EXPECT_EQ(TaskLane(TaskHash(HashFixtureRecord()), 4), 2u);
}

TEST(TaskHash, IgnoresObservationFlagsAndNegativeZero) {
  TaskRecord record = HashFixtureRecord();
  const std::uint64_t base = TaskHash(record);
  record.visits[0].arrival_observed = false;
  record.visits[1].departure_observed = false;
  EXPECT_EQ(TaskHash(record), base) << "observation flags are telemetry, not identity";

  TaskRecord zero = HashFixtureRecord(0.0);
  TaskRecord negative_zero = HashFixtureRecord(0.0);
  negative_zero.entry_time = -0.0;
  EXPECT_EQ(TaskHash(zero), TaskHash(negative_zero));
}

TEST(TaskHash, SensitiveToEveryIdentityField) {
  const std::uint64_t base = TaskHash(HashFixtureRecord());
  TaskRecord record = HashFixtureRecord();
  record.entry_time += 1e-9;
  EXPECT_NE(TaskHash(record), base);
  record = HashFixtureRecord();
  record.visits[1].queue = 3;
  EXPECT_NE(TaskHash(record), base);
  record = HashFixtureRecord();
  record.visits[0].state = 7;
  EXPECT_NE(TaskHash(record), base);
  record = HashFixtureRecord();
  record.visits[1].departure += 1e-12;
  EXPECT_NE(TaskHash(record), base);
  record = HashFixtureRecord();
  record.visits.pop_back();
  EXPECT_NE(TaskHash(record), base);
}

TEST(TaskHash, AvalanchesOnSingleBitEntryTimeFlips) {
  // Flipping one bit of the entry time must flip about half the output bits — the
  // property that makes low-entropy inputs (regular timestamps) spread uniformly.
  double total_flips = 0.0;
  int samples = 0;
  for (const double entry : {1.5, 1000.25, 3.0e5}) {
    const TaskRecord base_record = HashFixtureRecord(entry);
    const std::uint64_t base_hash = TaskHash(base_record);
    for (const int bit : {0, 7, 21, 36, 51}) {
      TaskRecord flipped = base_record;
      flipped.entry_time = std::bit_cast<double>(
          std::bit_cast<std::uint64_t>(entry) ^ (std::uint64_t{1} << bit));
      total_flips += std::popcount(base_hash ^ TaskHash(flipped));
      ++samples;
    }
  }
  const double mean_flips = total_flips / samples;
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 40.0);
}

TEST(TaskHash, SpreadsUniformlyAcrossLaneCounts) {
  // 4000 Poisson-ish synthetic tasks: every lane count gets close to its fair share,
  // and the lane of a record is stable regardless of which lane count others use.
  Rng rng(11);
  std::vector<TaskRecord> records;
  double t = 0.0;
  for (int i = 0; i < 4000; ++i) {
    t += rng.Exponential(10.0);
    TaskRecord record = HashFixtureRecord(t);
    record.visits[0].departure = t + rng.Exponential(40.0);
    records.push_back(record);
  }
  for (const std::size_t lanes : {2u, 3u, 4u, 8u}) {
    std::vector<std::size_t> counts(lanes, 0);
    for (const TaskRecord& record : records) {
      ++counts[TaskLane(TaskHash(record), lanes)];
    }
    const double fair = 4000.0 / static_cast<double>(lanes);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      EXPECT_GT(static_cast<double>(counts[lane]), 0.75 * fair)
          << "lanes=" << lanes << " lane=" << lane;
      EXPECT_LT(static_cast<double>(counts[lane]), 1.25 * fair)
          << "lanes=" << lanes << " lane=" << lane;
    }
  }
}

TEST(TaskLane, CoversRangeAndRejectsZeroLanes) {
  EXPECT_EQ(TaskLane(0, 1), 0u);
  EXPECT_EQ(TaskLane(~std::uint64_t{0}, 1), 0u);
  EXPECT_EQ(TaskLane(~std::uint64_t{0}, 8), 7u);
  EXPECT_EQ(TaskLane(0, 8), 0u);
  EXPECT_THROW(TaskLane(123, 0), Error);
}

}  // namespace
}  // namespace qnet
