// Tests for the arrival (workload) processes.

#include "qnet/sim/workload.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "qnet/support/check.h"
#include "qnet/support/math.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

TEST(PoissonArrivals, CountAndGapDistribution) {
  const PoissonArrivals workload(4.0, 5000);
  Rng rng(3);
  const auto times = workload.Generate(rng);
  ASSERT_EQ(times.size(), 5000u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  std::vector<double> gaps;
  gaps.push_back(times[0]);
  for (std::size_t i = 1; i < times.size(); ++i) {
    gaps.push_back(times[i] - times[i - 1]);
  }
  const double d = KsStatistic(gaps, [](double x) { return 1.0 - std::exp(-4.0 * x); });
  EXPECT_GT(KsPValue(d, gaps.size()), 1e-4);
}

TEST(LinearRampArrivals, ExpectedCountAndDensitySkew) {
  const LinearRampArrivals workload(1.0, 5.4, 1800.0);
  EXPECT_NEAR(workload.ExpectedTasks(), 5760.0, 1.0);
  Rng rng(5);
  const auto times = workload.Generate(rng);
  EXPECT_NEAR(static_cast<double>(times.size()), 5760.0, 5.0 * std::sqrt(5760.0));
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_LT(times.back(), 1800.0);
  // Second half of the window must contain more arrivals than the first half:
  // integral of rate over [900, 1800] vs [0, 900] = (3.2+5.4)/2 vs (1.0+3.2)/2.
  const auto mid = std::lower_bound(times.begin(), times.end(), 900.0);
  const double first_half = static_cast<double>(mid - times.begin());
  const double second_half = static_cast<double>(times.end() - mid);
  EXPECT_NEAR(second_half / first_half, 8.6 / 4.2, 0.15);
}

TEST(LinearRampArrivals, DecreasingRampWorksToo) {
  const LinearRampArrivals workload(5.0, 1.0, 100.0);
  Rng rng(7);
  const auto times = workload.Generate(rng);
  EXPECT_NEAR(static_cast<double>(times.size()), 300.0, 5.0 * std::sqrt(300.0));
}

TEST(PiecewiseConstantArrivals, SpikeShape) {
  // Quiet / spike / quiet.
  const PiecewiseConstantArrivals workload({0.0, 10.0, 20.0, 30.0}, {1.0, 20.0, 1.0});
  Rng rng(9);
  const auto times = workload.Generate(rng);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  std::size_t in_spike = 0;
  for (double t : times) {
    in_spike += (t >= 10.0 && t < 20.0) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(in_spike), 200.0, 5.0 * std::sqrt(200.0));
  EXPECT_NEAR(static_cast<double>(times.size() - in_spike), 20.0, 5.0 * std::sqrt(20.0));
}

TEST(PiecewiseConstantArrivals, RejectsMalformedBreaks) {
  EXPECT_THROW(PiecewiseConstantArrivals({0.0, 1.0}, {1.0, 2.0}), Error);
  EXPECT_THROW(PiecewiseConstantArrivals({1.0, 2.0}, {1.0}), Error);
  EXPECT_THROW(PiecewiseConstantArrivals({0.0, 0.0}, {1.0}), Error);
}

TEST(TraceArrivals, ReplaysExactly) {
  const std::vector<double> times = {0.5, 1.0, 1.0, 2.5};
  const TraceArrivals workload(times);
  Rng rng(1);
  EXPECT_EQ(workload.Generate(rng), times);
  EXPECT_THROW(TraceArrivals({1.0, 0.5}), Error);
  EXPECT_THROW(TraceArrivals({0.0}), Error);
}

// GenerateInto is the buffer-reusing primitive Generate now delegates to; it must
// consume the Rng draw-for-draw identically so warm-arena callers and historical callers
// see the same streams.
TEST(ArrivalProcess, GenerateIntoMatchesGenerateBitwise) {
  const PoissonArrivals poisson(4.0, 257);
  const LinearRampArrivals ramp(1.0, 5.4, 300.0);
  const PiecewiseConstantArrivals piecewise({0.0, 10.0, 20.0, 30.0}, {1.0, 20.0, 1.0});
  const TraceArrivals trace(std::vector<double>{0.5, 1.0, 1.0, 2.5});
  const ArrivalProcess* processes[] = {&poisson, &ramp, &piecewise, &trace};
  std::vector<double> reused;
  for (const ArrivalProcess* process : processes) {
    SCOPED_TRACE(process->Describe());
    Rng rng_a(1234);
    Rng rng_b(1234);
    const std::vector<double> fresh = process->Generate(rng_a);
    // The reused buffer starts dirty and oversized on the second iteration; GenerateInto
    // must clear it and leave both the times and the Rng state bitwise identical.
    process->GenerateInto(reused, rng_b);
    EXPECT_EQ(reused, fresh);
    EXPECT_EQ(rng_a.NextU64(), rng_b.NextU64());
  }
}

TEST(ArrivalProcess, GenerateIntoReusesCapacity) {
  const PoissonArrivals workload(4.0, 500);
  Rng rng(3);
  std::vector<double> out;
  workload.GenerateInto(out, rng);
  const double* data = out.data();
  const std::size_t cap = out.capacity();
  workload.GenerateInto(out, rng);
  EXPECT_EQ(out.data(), data);
  EXPECT_EQ(out.capacity(), cap);
}

TEST(ArrivalProcess, CloneAndDescribe) {
  const PoissonArrivals workload(2.0, 10);
  const auto clone = workload.Clone();
  Rng rng_a(42);
  Rng rng_b(42);
  EXPECT_EQ(workload.Generate(rng_a), clone->Generate(rng_b));
  EXPECT_NE(workload.Describe().find("poisson"), std::string::npos);
}

}  // namespace
}  // namespace qnet
