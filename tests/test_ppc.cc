// Posterior-predictive checks: a well-specified model passes; a badly mis-specified one
// (heavy-tailed truth inside an exponential model) is flagged on the tail statistic.

#include "qnet/infer/ppc.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "qnet/dist/exponential.h"
#include "qnet/dist/pareto.h"
#include "qnet/infer/estimators.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/check.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

TEST(ObservedResponseStats, OnlyUsesFullyObservedEvents) {
  const QueueingNetwork net = MakeSingleQueueNetwork(2.0, 5.0);
  Rng rng(3);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(2.0, 100), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.0;
  const Observation nothing = scheme.Apply(log, rng);
  std::vector<double> mean;
  std::vector<double> tail;
  ObservedResponseStats(log, nothing, 0.95, &mean, &tail);
  EXPECT_TRUE(std::isnan(mean[1]));

  const Observation all = Observation::FullyObserved(log);
  ObservedResponseStats(log, all, 0.95, &mean, &tail);
  // Mean observed response equals the realized mean response over all visits.
  double total = 0.0;
  for (EventId e : log.QueueOrder(1)) {
    total += log.ResponseTime(e);
  }
  EXPECT_NEAR(mean[1], total / static_cast<double>(log.QueueOrder(1).size()), 1e-9);
  EXPECT_GT(tail[1], mean[1]);
}

TEST(Ppc, WellSpecifiedModelPasses) {
  // Truth and fitted model are both M/M/1 with the estimated rates: p-values central.
  const QueueingNetwork net = MakeTandemNetwork(2.0, {5.0, 4.0});
  Rng rng(5);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 600), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.3;
  const Observation obs = scheme.Apply(truth, rng);

  // Fit rates from the complete data (best case) and check consistency.
  const auto mle = CompleteDataRatesMle(truth);
  QueueingNetwork fitted = net.Clone();
  for (int q = 0; q < net.NumQueues(); ++q) {
    fitted.SetService(q, std::make_unique<Exponential>(mle[static_cast<std::size_t>(q)]));
  }
  PpcOptions options;
  options.replicates = 120;
  const PpcResult result = PosteriorPredictiveCheck(truth, obs, fitted, rng, options);
  EXPECT_TRUE(result.ConsistentAt(0.01))
      << "p_mean q1=" << result.p_value_mean[1] << " q2=" << result.p_value_mean[2]
      << " p_tail q1=" << result.p_value_tail[1] << " q2=" << result.p_value_tail[2];
}

TEST(Ppc, HeavyTailMisfitIsFlagged) {
  // Truth: Pareto service (heavy tail), same mean as the fitted exponential. The tail
  // statistic should be extreme under the exponential model's replicates.
  QueueingNetwork truth_net(std::make_unique<Exponential>(1.0));
  truth_net.AddQueue("svc", std::make_unique<Pareto>(2.2, 0.36));  // mean 0.3, very heavy
  Fsm& fsm = truth_net.MutableFsm();
  const int s = fsm.AddState("s");
  fsm.SetDeterministicEmission(s, 1);
  fsm.SetInitialState(s);
  fsm.SetTransition(s, Fsm::kFinalState, 1.0);
  truth_net.Validate();

  Rng rng(7);
  const EventLog truth = SimulateWorkload(truth_net, PoissonArrivals(1.0, 800), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.5;
  const Observation obs = scheme.Apply(truth, rng);

  QueueingNetwork fitted(std::make_unique<Exponential>(1.0));
  fitted.AddQueue("svc", std::make_unique<Exponential>(
                             1.0 / truth.PerQueueMeanService()[1]));  // matched mean
  Fsm& ffsm = fitted.MutableFsm();
  const int fs = ffsm.AddState("s");
  ffsm.SetDeterministicEmission(fs, 1);
  ffsm.SetInitialState(fs);
  ffsm.SetTransition(fs, Fsm::kFinalState, 1.0);
  fitted.Validate();

  PpcOptions options;
  options.replicates = 120;
  options.tail_quantile = 0.99;
  const PpcResult result = PosteriorPredictiveCheck(truth, obs, fitted, rng, options);
  // Observed p99 response under a heavy tail exceeds nearly all exponential replicates.
  ASSERT_FALSE(std::isnan(result.p_value_tail[1]));
  EXPECT_LT(result.p_value_tail[1], 0.05);
  EXPECT_FALSE(result.ConsistentAt(0.05));
}

TEST(Ppc, GuardsBadOptions) {
  const QueueingNetwork net = MakeSingleQueueNetwork(2.0, 5.0);
  Rng rng(9);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 30), rng);
  const Observation obs = Observation::FullyObserved(truth);
  PpcOptions options;
  options.replicates = 5;
  EXPECT_THROW(PosteriorPredictiveCheck(truth, obs, net, rng, options), Error);
  PpcResult result;
  EXPECT_THROW(result.ConsistentAt(0.7), Error);
}

}  // namespace
}  // namespace qnet
