// Simulator validation: FIFO/event-graph invariants, agreement with classical M/M/1
// steady-state theory, Little's law, network composition, fault injection, and
// bit-equality of the SimScratch arena path against the legacy per-run-allocating path.

#include "qnet/sim/simulator.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "qnet/infer/mm1.h"
#include "qnet/model/builders.h"
#include "qnet/sim/sim_scratch.h"
#include "qnet/support/math.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

TEST(Simulator, ProducesFeasibleLogs) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 5.0});
  Rng rng(3);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(2.0, 500), rng);
  EXPECT_EQ(log.NumTasks(), 500);
  EXPECT_EQ(log.NumEvents(), 1500u);
  std::string why;
  EXPECT_TRUE(log.IsFeasible(1e-9, &why)) << why;
}

TEST(Simulator, ReproducibleWithSameSeed) {
  const QueueingNetwork net = MakeSingleQueueNetwork(3.0, 5.0);
  Rng rng_a(17);
  Rng rng_b(17);
  const EventLog a = SimulateWorkload(net, PoissonArrivals(3.0, 200), rng_a);
  const EventLog b = SimulateWorkload(net, PoissonArrivals(3.0, 200), rng_b);
  ASSERT_EQ(a.NumEvents(), b.NumEvents());
  for (EventId e = 0; static_cast<std::size_t>(e) < a.NumEvents(); ++e) {
    EXPECT_DOUBLE_EQ(a.Arrival(e), b.Arrival(e));
    EXPECT_DOUBLE_EQ(a.Departure(e), b.Departure(e));
  }
}

class Mm1TheoryTest : public ::testing::TestWithParam<double> {};

TEST_P(Mm1TheoryTest, MeanWaitMatchesSteadyState) {
  // Single M/M/1 queue, utilization from the parameter; long run, discard warmup.
  const double mu = 10.0;
  const double lambda = GetParam() * mu;
  const QueueingNetwork net = MakeSingleQueueNetwork(lambda, mu);
  Rng rng(29);
  const std::size_t tasks = 60000;
  const EventLog log = SimulateWorkload(net, PoissonArrivals(lambda, tasks), rng);

  const Mm1Metrics theory = AnalyzeMm1(lambda, mu);
  ASSERT_TRUE(theory.stable);
  RunningStat wait;
  RunningStat service;
  const auto& order = log.QueueOrder(1);
  for (std::size_t i = order.size() / 5; i < order.size(); ++i) {  // skip warmup fifth
    wait.Add(log.WaitTime(order[i]));
    service.Add(log.ServiceTime(order[i]));
  }
  EXPECT_NEAR(service.Mean(), 1.0 / mu, 0.15 / mu) << "rho=" << GetParam();
  // Queueing means converge slowly at high rho; scale tolerance with the value itself.
  EXPECT_NEAR(wait.Mean(), theory.mean_wait, 0.2 * theory.mean_wait + 0.01)
      << "rho=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Utilizations, Mm1TheoryTest, ::testing::Values(0.3, 0.5, 0.7, 0.85));

TEST(Simulator, LittlesLawHoldsOnTandem) {
  const double lambda = 3.0;
  const QueueingNetwork net = MakeTandemNetwork(lambda, {6.0, 8.0});
  Rng rng(31);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(lambda, 40000), rng);
  // L = lambda_eff * W per queue, measured over the busy horizon.
  for (int q = 1; q <= 2; ++q) {
    const auto& order = log.QueueOrder(q);
    const double horizon = log.Departure(order.back());
    double total_response = 0.0;
    for (EventId e : order) {
      total_response += log.ResponseTime(e);
    }
    const double mean_in_system = total_response / horizon;  // time-average L
    const double lambda_eff = static_cast<double>(order.size()) / horizon;
    const double mean_response = total_response / static_cast<double>(order.size());
    EXPECT_NEAR(mean_in_system, lambda_eff * mean_response, 1e-9);  // identity by algebra
    // And against theory:
    const Mm1Metrics theory = AnalyzeMm1(lambda, q == 1 ? 6.0 : 8.0);
    EXPECT_NEAR(mean_response, theory.mean_response, 0.15 * theory.mean_response)
        << "queue " << q;
  }
}

TEST(Simulator, OverloadedQueueGrowsLinearly) {
  // rho = 2: backlog grows at rate (lambda - mu); waiting times trend upward.
  const QueueingNetwork net = MakeSingleQueueNetwork(10.0, 5.0);
  Rng rng(37);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(10.0, 4000), rng);
  const auto& order = log.QueueOrder(1);
  double early = 0.0;
  double late = 0.0;
  const std::size_t quarter = order.size() / 4;
  for (std::size_t i = 0; i < quarter; ++i) {
    early += log.WaitTime(order[i]);
    late += log.WaitTime(order[order.size() - 1 - i]);
  }
  EXPECT_GT(late / early, 2.0);
  // Departure rate of the bottleneck ~ mu: exit horizon ~ tasks/mu.
  const double horizon = log.Departure(order.back());
  EXPECT_NEAR(horizon, 4000.0 / 5.0, 0.15 * 800.0);
}

TEST(Simulator, ThreeTierRoutesBalanceAcrossServers) {
  ThreeTierConfig config;
  config.tier_sizes = {1, 2, 4};
  const QueueingNetwork net = MakeThreeTierNetwork(config);
  Rng rng(41);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(10.0, 8000), rng);
  const auto counts = log.PerQueueCount();
  EXPECT_EQ(counts[1], 8000u);  // single front server sees everything
  for (int q = 2; q <= 3; ++q) {
    EXPECT_NEAR(static_cast<double>(counts[static_cast<std::size_t>(q)]), 4000.0, 300.0);
  }
  for (int q = 4; q <= 7; ++q) {
    EXPECT_NEAR(static_cast<double>(counts[static_cast<std::size_t>(q)]), 2000.0, 250.0);
  }
}

TEST(Simulator, FaultInjectionRaisesServiceInWindowOnly) {
  const QueueingNetwork net = MakeSingleQueueNetwork(1.0, 10.0);
  FaultSchedule faults;
  faults.AddSlowdown(1, 100.0, 200.0, 8.0);
  SimOptions options;
  options.faults = &faults;
  Rng rng(43);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(1.0, 3000), rng, options);
  RunningStat inside;
  RunningStat outside;
  for (EventId e : log.QueueOrder(1)) {
    const double begin = log.BeginService(e);
    (begin >= 100.0 && begin < 200.0 ? inside : outside).Add(log.ServiceTime(e));
  }
  ASSERT_GT(inside.Count(), 20u);
  EXPECT_NEAR(outside.Mean(), 0.1, 0.02);
  EXPECT_NEAR(inside.Mean(), 0.8, 0.25);
}

TEST(Simulator, FeedbackNetworkRevisitsAreFeasible) {
  const QueueingNetwork net = MakeFeedbackNetwork(1.0, 4.0, 0.5);
  Rng rng(47);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(1.0, 2000), rng);
  std::string why;
  EXPECT_TRUE(log.IsFeasible(1e-9, &why)) << why;
  // Mean visits per task = 1/(1-p) = 2.
  const double visits =
      static_cast<double>(log.NumEvents() - static_cast<std::size_t>(log.NumTasks())) /
      static_cast<double>(log.NumTasks());
  EXPECT_NEAR(visits, 2.0, 0.1);
}

TEST(Simulator, SimulateWithRoutesHonorsGivenRoutes) {
  const QueueingNetwork net = MakeTandemNetwork(1.0, {3.0, 3.0});
  // Degenerate route: both tasks visit only queue 2.
  const std::vector<std::vector<RouteStep>> routes = {{{1, 2}}, {{1, 2}}};
  Rng rng(53);
  const EventLog log = SimulateWithRoutes(net, {1.0, 2.0}, routes, rng);
  const auto counts = log.PerQueueCount();
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 2u);
}

void ExpectLogsBitIdentical(const EventLog& a, const EventLog& b) {
  ASSERT_EQ(a.NumQueues(), b.NumQueues());
  ASSERT_EQ(a.NumTasks(), b.NumTasks());
  ASSERT_EQ(a.NumEvents(), b.NumEvents());
  for (EventId e = 0; static_cast<std::size_t>(e) < a.NumEvents(); ++e) {
    ASSERT_EQ(a.At(e).task, b.At(e).task);
    ASSERT_EQ(a.At(e).state, b.At(e).state);
    ASSERT_EQ(a.At(e).queue, b.At(e).queue);
    // EXPECT_EQ (not DOUBLE_EQ): the arena path promises bitwise identity, not closeness.
    ASSERT_EQ(a.Arrival(e), b.Arrival(e));
    ASSERT_EQ(a.Departure(e), b.Departure(e));
  }
  for (int q = 1; q < a.NumQueues(); ++q) {
    ASSERT_EQ(a.QueueOrder(q), b.QueueOrder(q));
  }
}

// Fixtures covering the route shapes the DES meets in practice: fixed-length chains, a
// feedback loop with geometric route lengths, and a fork across replicated servers.
std::vector<QueueingNetwork> ScratchFixtures() {
  std::vector<QueueingNetwork> nets;
  nets.push_back(MakeSingleQueueNetwork(3.0, 5.0));
  nets.push_back(MakeTandemNetwork(2.0, {4.0, 5.0}));
  nets.push_back(MakeFeedbackNetwork(1.0, 4.0, 0.5));
  ThreeTierConfig config;
  config.tier_sizes = {2, 2};
  nets.push_back(MakeThreeTierNetwork(config));
  return nets;
}

TEST(SimScratchPath, MatchesLegacySimulateWithRoutesBitwise) {
  for (const QueueingNetwork& net : ScratchFixtures()) {
    SCOPED_TRACE(net.NumQueues());
    const PoissonArrivals workload(1.0, 300);
    // Legacy path: materialize entries and per-task route vectors, then the historical
    // allocating simulator. Draw order (arrivals, routes task-by-task, services in pop
    // order) matches the arena path, so a same-seeded Rng must yield identical logs.
    Rng rng_legacy(91);
    const std::vector<double> entries = workload.Generate(rng_legacy);
    std::vector<std::vector<RouteStep>> routes;
    routes.reserve(entries.size());
    for (std::size_t k = 0; k < entries.size(); ++k) {
      routes.push_back(net.GetFsm().SampleRoute(rng_legacy));
    }
    const EventLog legacy = SimulateWithRoutes(net, entries, routes, rng_legacy);

    Rng rng_scratch(91);
    SimScratch scratch;
    SimulateWorkloadIntoScratch(net, workload, scratch, rng_scratch);
    EventLog from_scratch(net.NumQueues());
    ScratchToEventLog(scratch, net.NumQueues(), from_scratch);
    ExpectLogsBitIdentical(legacy, from_scratch);

    // The public convenience wrapper now routes through the arena — same contract.
    Rng rng_public(91);
    const EventLog from_public = SimulateWorkload(net, workload, rng_public);
    ExpectLogsBitIdentical(legacy, from_public);
  }
}

TEST(SimScratchPath, ReusedScratchMatchesFreshScratch) {
  // One arena dragged across differently-shaped networks (dirty offsets, oversized
  // buffers, stale heap capacity) must behave exactly like a fresh arena per run.
  SimScratch reused;
  for (const QueueingNetwork& net : ScratchFixtures()) {
    SCOPED_TRACE(net.NumQueues());
    const PoissonArrivals workload(1.0, 250);
    Rng rng_reused(7);
    Rng rng_fresh(7);
    SimulateWorkloadIntoScratch(net, workload, reused, rng_reused);
    SimScratch fresh;
    SimulateWorkloadIntoScratch(net, workload, fresh, rng_fresh);
    ASSERT_EQ(reused.NumTasks(), fresh.NumTasks());
    EXPECT_EQ(reused.entry_times, fresh.entry_times);
    EXPECT_EQ(reused.route_offsets, fresh.route_offsets);
    EXPECT_EQ(reused.step_begin, fresh.step_begin);
    EXPECT_EQ(reused.step_departure, fresh.step_departure);
    EXPECT_EQ(reused.queue_wait_sum, fresh.queue_wait_sum);
    EXPECT_EQ(reused.queue_busy_sum, fresh.queue_busy_sum);
  }
}

TEST(SimScratchPath, ReusedEventLogMatchesFresh) {
  const QueueingNetwork feedback = MakeFeedbackNetwork(1.0, 4.0, 0.5);
  const QueueingNetwork tandem = MakeTandemNetwork(2.0, {4.0, 5.0});
  SimScratch scratch;
  EventLog reused(feedback.NumQueues());
  // Fill the reused log with a bigger, differently-shaped run first so Reset has real
  // stale state (more tasks, more queues, longer routes) to neutralize.
  {
    Rng rng(11);
    SimulateWorkloadIntoScratch(feedback, PoissonArrivals(1.0, 400), scratch, rng);
    ScratchToEventLog(scratch, feedback.NumQueues(), reused);
  }
  Rng rng_a(13);
  Rng rng_b(13);
  SimulateWorkloadIntoScratch(tandem, PoissonArrivals(2.0, 100), scratch, rng_a);
  ScratchToEventLog(scratch, tandem.NumQueues(), reused);
  SimScratch scratch_b;
  SimulateWorkloadIntoScratch(tandem, PoissonArrivals(2.0, 100), scratch_b, rng_b);
  EventLog fresh(tandem.NumQueues());
  ScratchToEventLog(scratch_b, tandem.NumQueues(), fresh);
  ExpectLogsBitIdentical(fresh, reused);
}

TEST(Mm1, AnalyticFormulas) {
  const Mm1Metrics m = AnalyzeMm1(5.0, 10.0);
  EXPECT_TRUE(m.stable);
  EXPECT_DOUBLE_EQ(m.utilization, 0.5);
  EXPECT_DOUBLE_EQ(m.mean_response, 0.2);
  EXPECT_DOUBLE_EQ(m.mean_wait, 0.1);
  EXPECT_DOUBLE_EQ(m.mean_in_system, 1.0);
  const Mm1Metrics overloaded = AnalyzeMm1(10.0, 5.0);
  EXPECT_FALSE(overloaded.stable);
  EXPECT_DOUBLE_EQ(overloaded.utilization, 2.0);
}

}  // namespace
}  // namespace qnet
