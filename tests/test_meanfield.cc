// Mean-field fast path: accuracy of the sampler-free window fit against StEM and the
// generating rates across utilizations, determinism (a pure function of the observed
// times + structure), the zero-allocation hot-path contract, and the cross-lane
// bias-correction inversions.

#include "qnet/infer/meanfield.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "support/counting_allocator.h"
#include "qnet/infer/stem.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/stream/task_record.h"
#include "qnet/stream/window_assembler.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

MeanFieldFit FitLog(const EventLog& log, const Observation& obs, double origin = 0.0) {
  MeanFieldEstimator estimator;
  MeanFieldFit fit;
  estimator.Fit(log, obs, origin, fit);
  return fit;
}

StemResult StemFit(const EventLog& log, const Observation& obs, std::size_t num_queues,
                   std::uint64_t seed) {
  StemOptions options;
  options.iterations = 60;
  options.burn_in = 20;
  options.wait_sweeps = 0;
  Rng rng(seed);
  return StemEstimator(options).Run(log, obs, std::vector<double>(num_queues, 1.0), rng);
}

// --- Accuracy across utilizations --------------------------------------------------------

TEST(MeanField, TracksTruthAndStemOnMm1AcrossUtilizations) {
  // The closure R = 1/(mu - lambda) is exact for M/M/1, so the inversion should track
  // the generating rates at every utilization — the degradation/warm-start regimes the
  // fast path serves all live in this sweep.
  const double lambda = 2.0;
  int rep = 0;
  for (const double rho : {0.1, 0.5, 0.7, 0.9}) {
    const double mu = lambda / rho;
    const QueueingNetwork net = MakeSingleQueueNetwork(lambda, mu);
    Rng rng(100 + rep++);
    const EventLog truth = SimulateWorkload(net, PoissonArrivals(lambda, 800), rng);
    const Observation obs = Observation::FullyObserved(truth);

    const MeanFieldFit fit = FitLog(truth, obs);
    ASSERT_EQ(fit.rates.size(), 2u);
    EXPECT_TRUE(fit.AllQueuesFitted()) << "rho=" << rho;
    EXPECT_NEAR(fit.rates[0], lambda, 0.25 * lambda) << "rho=" << rho;
    EXPECT_NEAR(1.0 / fit.rates[1], 1.0 / mu, 0.10 / mu) << "rho=" << rho;
    // The waiting-time estimate tracks the realized mean wait.
    const double realized_wait = truth.PerQueueMeanWait()[1];
    EXPECT_NEAR(fit.mean_wait[1], realized_wait, 0.25 * realized_wait + 0.02)
        << "rho=" << rho;

    // And it agrees with StEM on the same trace (full observation: StEM reduces to the
    // complete-data MLE).
    const StemResult stem = StemFit(truth, obs, 2, 9);
    EXPECT_NEAR(1.0 / fit.rates[1], 1.0 / stem.rates[1], 0.10 / stem.rates[1])
        << "rho=" << rho;
  }
}

TEST(MeanField, TracksTruthAndStemOnTandemAcrossUtilizations) {
  // 3-queue tandem; in equilibrium each stage's arrivals are Poisson (Burke), so the
  // per-queue M/M/1 decoupling stays honest and every stage should invert cleanly.
  const double lambda = 2.0;
  int rep = 0;
  for (const double rho : {0.1, 0.5, 0.7, 0.9}) {
    const std::vector<double> service_rates = {lambda / rho, 1.15 * lambda / rho,
                                               1.3 * lambda / rho};
    const QueueingNetwork net = MakeTandemNetwork(lambda, service_rates);
    Rng rng(200 + rep++);
    const EventLog truth = SimulateWorkload(net, PoissonArrivals(lambda, 800), rng);
    const Observation obs = Observation::FullyObserved(truth);

    const MeanFieldFit fit = FitLog(truth, obs);
    ASSERT_EQ(fit.rates.size(), 4u);
    const StemResult stem = StemFit(truth, obs, 4, 11);
    for (std::size_t q = 1; q < 4; ++q) {
      const double mu = service_rates[q - 1];
      EXPECT_NEAR(1.0 / fit.rates[q], 1.0 / mu, 0.12 / mu)
          << "rho=" << rho << " queue " << q;
      EXPECT_NEAR(1.0 / fit.rates[q], 1.0 / stem.rates[q], 0.12 / stem.rates[q])
          << "rho=" << rho << " queue " << q;
    }
  }
}

TEST(MeanField, WorksFromPartiallyObservedResponses) {
  // Task-level sampling observes complete tasks, so sampled tasks contribute their full
  // per-queue responses; the fit just averages fewer of them.
  const QueueingNetwork net = MakeTandemNetwork(2.0, {5.0, 4.0});
  Rng rng(7);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 1000), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.25;
  const Observation obs = scheme.Apply(truth, rng);

  const MeanFieldFit fit = FitLog(truth, obs);
  EXPECT_GT(fit.observed_responses, 100u);
  EXPECT_NEAR(1.0 / fit.rates[1], 0.2, 0.05);
  EXPECT_NEAR(1.0 / fit.rates[2], 0.25, 0.06);
  EXPECT_NEAR(fit.rates[0], 2.0, 0.4);
}

// --- Determinism and observability contract ----------------------------------------------

TEST(MeanField, ReadsOnlyObservedTimesAndIsDeterministic) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {5.0, 4.0});
  Rng rng(13);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 300), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.4;
  const Observation obs = scheme.Apply(truth, rng);

  const MeanFieldFit first = FitLog(truth, obs);
  const MeanFieldFit again = FitLog(truth, obs);
  EXPECT_EQ(first.rates, again.rates);
  EXPECT_EQ(first.mean_wait, again.mean_wait);

  // Corrupt every UNOBSERVED time: the fit must not move a bit.
  EventLog perturbed = truth;
  for (EventId e = 0; static_cast<std::size_t>(e) < perturbed.NumEvents(); ++e) {
    if (!obs.ArrivalObserved(e) && !perturbed.At(e).initial) {
      perturbed.SetArrival(e, perturbed.Arrival(e) + 123.456);
    }
    if (!obs.DepartureObserved(e)) {
      perturbed.SetDeparture(e, perturbed.Departure(e) + 654.321);
    }
  }
  const MeanFieldFit corrupted = FitLog(perturbed, obs);
  EXPECT_EQ(first.rates, corrupted.rates);
  EXPECT_EQ(first.mean_wait, corrupted.mean_wait);
}

TEST(MeanField, ArrivalOriginAnchorsLambdaAndNothingElse) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {5.0, 4.0});
  Rng rng(17);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 300), rng);
  const Observation obs = Observation::FullyObserved(truth);

  const MeanFieldFit absolute = FitLog(truth, obs, 0.0);
  const double last_entry = truth.TaskEntryTime(truth.NumTasks() - 1);
  const MeanFieldFit anchored = FitLog(truth, obs, 0.25 * last_entry);
  EXPECT_NEAR(anchored.rates[0],
              static_cast<double>(truth.NumTasks()) / (0.75 * last_entry), 1e-9);
  for (std::size_t q = 1; q < absolute.rates.size(); ++q) {
    EXPECT_EQ(absolute.rates[q], anchored.rates[q]) << "queue " << q;
    EXPECT_EQ(absolute.mean_wait[q], anchored.mean_wait[q]) << "queue " << q;
  }
  // Degenerate origin at/after the last entry: absolute fallback, like the M-step.
  const MeanFieldFit degenerate = FitLog(truth, obs, 2.0 * last_entry);
  EXPECT_EQ(degenerate.rates[0], absolute.rates[0]);
}

TEST(MeanField, QueueWithNoEventsKeepsFallbackRate) {
  // Single-visit records to queue 1 of a 3-queue network: queue 2 has no events, so the
  // fit flags it unfitted and leaves the fallback rate (the caller substitutes its warm
  // chain's rates).
  WindowLogBuilder builder(3);
  for (int i = 0; i < 6; ++i) {
    TaskRecord record;
    record.entry_time = 1.0 + i;
    TaskVisit visit;
    visit.state = 0;
    visit.queue = 1;
    visit.arrival = record.entry_time;
    visit.departure = record.entry_time + 0.25;
    record.visits.push_back(visit);
    builder.Add(record);
  }
  auto [log, obs] = builder.Finish();
  MeanFieldOptions options;
  options.fallback_rate = 3.25;
  MeanFieldEstimator estimator(options);
  MeanFieldFit fit;
  estimator.Fit(log, obs, 0.0, fit);
  EXPECT_EQ(fit.fitted[1], 1);
  EXPECT_EQ(fit.fitted[2], 0);
  EXPECT_FALSE(fit.AllQueuesFitted());
  EXPECT_EQ(fit.rates[2], 3.25);
  // mu = lambda_q + 1/Rbar with lambda_q = 6 events / busy span [1.0, 6.25].
  EXPECT_NEAR(fit.rates[1], 6.0 / 5.25 + 1.0 / 0.25, 1e-9);
}

// --- Zero allocations per fit ------------------------------------------------------------

TEST(MeanField, FitIsAllocationFreeOnceWarm) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {5.0, 4.0});
  Rng rng(23);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 500), rng);
  const Observation obs = Observation::FullyObserved(truth);

  MeanFieldEstimator estimator;
  MeanFieldFit fit;
  estimator.Fit(truth, obs, 0.0, fit);  // warm-up sizes the scratch + out vectors

  const std::size_t before = qnet_testing::AllocationCount();
  for (int i = 0; i < 100; ++i) {
    estimator.Fit(truth, obs, 0.0, fit);
  }
  EXPECT_EQ(qnet_testing::AllocationCount() - before, 0u);
}

// --- Cross-lane bias-correction inversions -----------------------------------------------

TEST(MeanFieldWaitFn, MatchesMm1FormulaAndClampsOverload) {
  // W = lambda / (mu (mu - lambda)).
  EXPECT_NEAR(MeanFieldWait(2.0, 4.0), 2.0 / (4.0 * 2.0), 1e-12);
  EXPECT_NEAR(MeanFieldWait(1.0, 4.0), 1.0 / (4.0 * 3.0), 1e-12);
  EXPECT_EQ(MeanFieldWait(0.0, 4.0), 0.0);
  EXPECT_EQ(MeanFieldWait(2.0, 0.0), 0.0);
  // Overload clamps at max_utilization instead of going negative/infinite.
  const double clamped = MeanFieldWait(10.0, 4.0, 0.95);
  EXPECT_GT(clamped, 0.0);
  EXPECT_NEAR(clamped, (0.95 * 4.0) / (4.0 * (4.0 - 0.95 * 4.0)), 1e-12);
}

TEST(CorrectCrossLaneShare, RecoversTrueRateFromExactMoments) {
  // M/M/1, lambda = 2, mu = 4: true S = 0.25, W = 0.25, R = 0.5. A lane decomposition
  // shifts wait mass into service (S_b = 0.45, W_b = 0.05) but leaves their sum — the
  // response — invariant; the correction re-inverts mu = lambda + 1/R exactly.
  const PooledCorrection corrected = CorrectCrossLaneShare(1.0 / 0.45, 0.05, 2.0);
  EXPECT_NEAR(corrected.rate, 4.0, 1e-9);
  EXPECT_NEAR(corrected.wait, 0.25, 1e-9);
  // Unbiased input is a fixed point.
  const PooledCorrection fixed_point = CorrectCrossLaneShare(4.0, 0.25, 2.0);
  EXPECT_NEAR(fixed_point.rate, 4.0, 1e-9);
  EXPECT_NEAR(fixed_point.wait, 0.25, 1e-9);
  // Degenerate inputs pass through unchanged.
  const PooledCorrection degenerate = CorrectCrossLaneShare(0.0, 0.1, 2.0);
  EXPECT_EQ(degenerate.rate, 0.0);
  EXPECT_EQ(degenerate.wait, 0.1);
}

TEST(ModelCrossLaneServiceRate, SolvesThinnedWaitFixedPoint) {
  // Synthetic 2-lane split of M/M/1 with lambda_q = 2, mu = 4: each lane sees half the
  // arrivals, so the biased pooled service is
  //   S_b = S + W(2, 4) - W(1, 4) = 0.25 + 0.25 - 1/12 = 0.41667.
  const double s_b = 0.25 + MeanFieldWait(2.0, 4.0) - MeanFieldWait(1.0, 4.0);
  const std::vector<double> shares = {0.5, 0.5};
  const std::vector<double> weights = {1.0, 1.0};
  const double corrected = ModelCrossLaneServiceRate(1.0 / s_b, 2.0, shares, weights);
  EXPECT_NEAR(1.0 / corrected, 0.25, 0.02);
  // No lane data: unchanged.
  EXPECT_EQ(ModelCrossLaneServiceRate(2.4, 2.0, {}, {}), 2.4);
  // Zero arrival rate: nothing to correct.
  EXPECT_EQ(ModelCrossLaneServiceRate(2.4, 0.0, shares, weights), 2.4);
}

}  // namespace
}  // namespace qnet
