// Tests for the observation schemes and their consistency invariants.

#include "qnet/obs/observation.h"

#include <gtest/gtest.h>

#include "qnet/model/builders.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/check.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

EventLog MakeLog(int tasks = 100) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {5.0, 5.0});
  Rng rng(3);
  return SimulateWorkload(net, PoissonArrivals(2.0, static_cast<std::size_t>(tasks)), rng);
}

TEST(Observation, FullyObservedHasNoLatents) {
  const EventLog log = MakeLog(20);
  const Observation obs = Observation::FullyObserved(log);
  obs.Validate(log);
  EXPECT_EQ(obs.NumLatentArrivals(log), 0u);
  EXPECT_EQ(obs.observed_tasks.size(), 20u);
}

TEST(TaskSampling, ObservesAllArrivalsOfSampledTasksOnly) {
  const EventLog log = MakeLog(100);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.25;
  Rng rng(7);
  const Observation obs = scheme.Apply(log, rng);
  obs.Validate(log);
  EXPECT_EQ(obs.observed_tasks.size(), 25u);
  std::vector<char> is_observed(static_cast<std::size_t>(log.NumTasks()), 0);
  for (int task : obs.observed_tasks) {
    is_observed[static_cast<std::size_t>(task)] = 1;
  }
  for (int task = 0; task < log.NumTasks(); ++task) {
    const auto& chain = log.TaskEvents(task);
    for (std::size_t i = 1; i < chain.size(); ++i) {
      EXPECT_EQ(obs.ArrivalObserved(chain[i]),
                is_observed[static_cast<std::size_t>(task)] != 0);
    }
    // Exits of sampled tasks are observed by default (identifiability of the last queue).
    EXPECT_EQ(obs.DepartureObserved(chain.back()),
              is_observed[static_cast<std::size_t>(task)] != 0);
  }
}

TEST(TaskSampling, ArrivalOnlyModeLeavesExitsLatent) {
  const EventLog log = MakeLog(40);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.5;
  scheme.observe_final_departure = false;
  Rng rng(9);
  const Observation obs = scheme.Apply(log, rng);
  obs.Validate(log);
  for (int task : obs.observed_tasks) {
    EXPECT_FALSE(obs.DepartureObserved(log.TaskEvents(task).back()));
    EXPECT_TRUE(obs.ArrivalObserved(log.TaskEvents(task)[1]));
  }
}

TEST(TaskSampling, LatentCountMatchesUnobservedEvents) {
  const EventLog log = MakeLog(100);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.1;
  Rng rng(11);
  const Observation obs = scheme.Apply(log, rng);
  // 100 tasks x 2 visits; 10 observed tasks => 90 * 2 latent arrivals.
  EXPECT_EQ(obs.NumLatentArrivals(log), 180u);
  EXPECT_EQ(obs.NumObservedArrivals(), 100u + 20u);  // initial events always observed
}

TEST(TaskSampling, FractionZeroAndOne) {
  const EventLog log = MakeLog(30);
  Rng rng(13);
  TaskSamplingScheme none;
  none.fraction = 0.0;
  EXPECT_EQ(none.Apply(log, rng).observed_tasks.size(), 0u);
  TaskSamplingScheme all;
  all.fraction = 1.0;
  const Observation obs = all.Apply(log, rng);
  EXPECT_EQ(obs.observed_tasks.size(), 30u);
  EXPECT_EQ(obs.NumLatentArrivals(log), 0u);
}

TEST(TaskSampling, DeterministicTaskChoice) {
  const EventLog log = MakeLog(10);
  TaskSamplingScheme scheme;
  const Observation obs = scheme.ApplyToTasks(log, {2, 7});
  obs.Validate(log);
  EXPECT_EQ(obs.observed_tasks, (std::vector<int>{2, 7}));
  EXPECT_TRUE(obs.ArrivalObserved(log.TaskEvents(2)[1]));
  EXPECT_FALSE(obs.ArrivalObserved(log.TaskEvents(3)[1]));
}

TEST(EventSampling, InvariantHoldsUnderIndependentSampling) {
  const EventLog log = MakeLog(200);
  EventSamplingScheme scheme;
  scheme.fraction = 0.3;
  Rng rng(17);
  const Observation obs = scheme.Apply(log, rng);
  obs.Validate(log);  // would CHECK-fail on any inconsistency
  const double latent_fraction =
      static_cast<double>(obs.NumLatentArrivals(log)) / (200.0 * 2.0);
  EXPECT_NEAR(latent_fraction, 0.7, 0.08);
}

TEST(Observation, ValidateCatchesDesyncedMasks) {
  const EventLog log = MakeLog(5);
  Observation obs = Observation::FullyObserved(log);
  // Desync: claim an arrival observed but its pi departure not.
  const EventId second = log.TaskEvents(0)[1];
  obs.departure_observed[static_cast<std::size_t>(log.At(second).pi)] = 0;
  EXPECT_THROW(obs.Validate(log), Error);
}

}  // namespace
}  // namespace qnet
