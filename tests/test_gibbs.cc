// Gibbs sampler correctness: invariant preservation, no-op on fully observed data, and —
// the strongest check — agreement of posterior means with exact analytic/numeric values on
// a small tractable case.

#include "qnet/infer/gibbs.h"

#include <cmath>

#include <gtest/gtest.h>

#include "qnet/infer/initializer.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/check.h"
#include "qnet/support/math.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

TEST(Gibbs, FullyObservedSweepIsNoOp) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
  Rng rng(3);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 50), rng);
  const Observation obs = Observation::FullyObserved(truth);
  GibbsSampler sampler(truth, obs, net.ExponentialRates());
  EXPECT_EQ(sampler.NumLatentArrivals(), 0u);
  EXPECT_EQ(sampler.NumLatentFinalDepartures(), 0u);
  sampler.Sweep(rng);
  for (EventId e = 0; static_cast<std::size_t>(e) < truth.NumEvents(); ++e) {
    EXPECT_DOUBLE_EQ(sampler.State().Arrival(e), truth.Arrival(e));
    EXPECT_DOUBLE_EQ(sampler.State().Departure(e), truth.Departure(e));
  }
}

TEST(Gibbs, SweepsPreserveFeasibilityAndObservations) {
  ThreeTierConfig config;
  config.tier_sizes = {1, 2, 4};
  const QueueingNetwork net = MakeThreeTierNetwork(config);
  const auto rates = net.ExponentialRates();
  Rng rng(5);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(10.0, 150), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.2;
  const Observation obs = scheme.Apply(truth, rng);
  EventLog init = InitializeFeasible(truth, obs, rates, rng);
  GibbsSampler sampler(std::move(init), obs, rates);
  EXPECT_GT(sampler.NumLatentArrivals(), 0u);
  for (int sweep = 0; sweep < 20; ++sweep) {
    sampler.Sweep(rng);
  }
  std::string why;
  EXPECT_TRUE(sampler.State().IsFeasible(1e-6, &why)) << why;
  for (EventId e = 0; static_cast<std::size_t>(e) < truth.NumEvents(); ++e) {
    if (obs.ArrivalObserved(e)) {
      EXPECT_DOUBLE_EQ(sampler.State().Arrival(e), truth.Arrival(e));
    }
  }
}

TEST(Gibbs, ShuffledScanAlsoPreservesInvariants) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 6.0});
  const auto rates = net.ExponentialRates();
  Rng rng(7);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 100), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.1;
  const Observation obs = scheme.Apply(truth, rng);
  GibbsOptions options;
  options.shuffle_scan = true;
  GibbsSampler sampler(InitializeFeasible(truth, obs, rates, rng), obs, rates, options);
  for (int sweep = 0; sweep < 10; ++sweep) {
    sampler.Sweep(rng);
  }
  std::string why;
  EXPECT_TRUE(sampler.State().IsFeasible(1e-6, &why)) << why;
}

// Exact posterior check. Network: single M/M/1 queue, lambda = 1, mu = 2.
// Task 0 fully observed: entry 1.0, service start 1.0, departure 2.0.
// Task 1 fully latent: entry a, departure d, constrained by a >= 1, d >= max(a, 2).
// Joint: p(a, d) ∝ exp(-lambda (a - 1)) exp(-mu (d - max(a, 2))).
// Marginals: a - 1 ~ Exp(lambda); E[d] = E[max(a, 2)] + 1/mu = 2 + e^{-1} + 0.5.
TEST(Gibbs, PosteriorMeansMatchAnalyticOnTractableCase) {
  EventLog log(2);
  log.AddTask(1.0);
  log.AddTask(1.5);  // initial value of the latent entry; will be resampled
  log.AddVisit(0, 0, 1, 1.0, 2.0);
  log.AddVisit(1, 0, 1, 1.5, 2.5);
  log.BuildQueueLinks();

  Observation obs;
  obs.arrival_observed.assign(log.NumEvents(), 0);
  obs.departure_observed.assign(log.NumEvents(), 0);
  const auto& chain0 = log.TaskEvents(0);
  const auto& chain1 = log.TaskEvents(1);
  obs.arrival_observed[static_cast<std::size_t>(chain0[0])] = 1;
  obs.arrival_observed[static_cast<std::size_t>(chain1[0])] = 1;
  obs.arrival_observed[static_cast<std::size_t>(chain0[1])] = 1;  // task 0 fully observed
  obs.departure_observed[static_cast<std::size_t>(chain0[0])] = 1;
  obs.departure_observed[static_cast<std::size_t>(chain0[1])] = 1;
  obs.Validate(log);

  const std::vector<double> rates = {1.0, 2.0};  // lambda, mu
  GibbsSampler sampler(log, obs, rates);
  EXPECT_EQ(sampler.NumLatentArrivals(), 1u);
  EXPECT_EQ(sampler.NumLatentFinalDepartures(), 1u);

  Rng rng(11);
  RunningStat a_stat;
  RunningStat d_stat;
  const int burn_in = 500;
  const int sweeps = 60000;
  for (int i = 0; i < sweeps; ++i) {
    sampler.Sweep(rng);
    if (i >= burn_in) {
      a_stat.Add(sampler.State().Arrival(chain1[1]));
      d_stat.Add(sampler.State().Departure(chain1[1]));
    }
  }
  const double expected_a = 2.0;                              // 1 + 1/lambda
  const double expected_d = 2.0 + std::exp(-1.0) + 0.5;       // E[max(a,2)] + 1/mu
  EXPECT_NEAR(a_stat.Mean(), expected_a, 0.03);
  EXPECT_NEAR(d_stat.Mean(), expected_d, 0.03);
  // Marginal variance of a is 1/lambda^2 = 1; the (a, d) chain is autocorrelated, so the
  // variance estimate converges more slowly than the means.
  EXPECT_NEAR(a_stat.Variance(), 1.0, 0.15);
}

TEST(Gibbs, StationaryAtTruthUnderTrueRates) {
  // Starting from the ground truth with the true rates, long-run per-queue mean services
  // should stay near the truth (the chain is stationary; no systematic drift).
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
  const auto rates = net.ExponentialRates();
  Rng rng(13);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 400), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.3;
  const Observation obs = scheme.Apply(truth, rng);
  GibbsSampler sampler(truth, obs, rates);  // truth is trivially feasible
  std::vector<RunningStat> mean_service(static_cast<std::size_t>(truth.NumQueues()));
  for (int sweep = 0; sweep < 300; ++sweep) {
    sampler.Sweep(rng);
    const auto services = sampler.State().PerQueueMeanService();
    for (std::size_t q = 0; q < services.size(); ++q) {
      mean_service[q].Add(services[q]);
    }
  }
  // Posterior means hover near the true parameter means (1/mu), within posterior spread.
  EXPECT_NEAR(mean_service[1].Mean(), 0.25, 0.05);
  EXPECT_NEAR(mean_service[2].Mean(), 1.0 / 3.0, 0.06);
}

TEST(Gibbs, LogJointIncreasesFromBadInitialization) {
  // From a feasible but atypical initialization, the chain should move toward regions of
  // higher joint density (on average).
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
  const auto rates = net.ExponentialRates();
  Rng rng(17);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 200), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.05;
  const Observation obs = scheme.Apply(truth, rng);
  GibbsSampler sampler(InitializeFeasible(truth, obs, rates, rng), obs, rates);
  const double initial = sampler.LogJointExponential();
  double late = 0.0;
  for (int sweep = 0; sweep < 50; ++sweep) {
    sampler.Sweep(rng);
    if (sweep >= 40) {
      late += sampler.LogJointExponential() / 10.0;
    }
  }
  EXPECT_GT(late, initial - 50.0);  // no catastrophic drift to low-density regions
}

TEST(Gibbs, RejectsMismatchedRates) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0});
  Rng rng(19);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 10), rng);
  const Observation obs = Observation::FullyObserved(truth);
  GibbsSampler sampler(truth, obs, net.ExponentialRates());
  EXPECT_THROW(sampler.SetRates({1.0}), Error);
  EXPECT_THROW(sampler.SetRates({1.0, -2.0}), Error);
}

}  // namespace
}  // namespace qnet
