// Streaming inference engine: trace streams, watermark-driven window assembly, and the
// pipelined windowed StEM estimator.
//
// The load-bearing assertions are bit-exactness ones: the streaming engine must
// reproduce the batch windowed estimator exactly — same windows, same estimates — for
// any sharded-sweep thread count and any pipelining, and the window logs built
// incrementally from TaskRecords must equal the ones ExtractTaskWindow builds from the
// batch log.

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "support/vector_stream.h"
#include "qnet/infer/online.h"
#include "qnet/infer/stem.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/fault.h"
#include "qnet/sim/simulator.h"
#include "qnet/stream/live_stream.h"
#include "qnet/stream/replay_stream.h"
#include "qnet/stream/streaming_estimator.h"
#include "qnet/stream/task_record.h"
#include "qnet/stream/window_assembler.h"
#include "qnet/support/check.h"
#include "qnet/support/rng.h"
#include "qnet/trace/csv.h"

namespace qnet {
namespace {

struct Fixture {
  EventLog truth;
  Observation obs;

  Fixture(double fraction = 0.5, std::size_t tasks = 400, std::uint64_t seed = 7)
      : truth(MakeLog(tasks, seed)), obs(MakeObs(truth, fraction, seed)) {}

  static EventLog MakeLog(std::size_t tasks, std::uint64_t seed) {
    const QueueingNetwork net = MakeTandemNetwork(4.0, {8.0, 9.0});
    Rng rng(seed);
    return SimulateWorkload(net, PoissonArrivals(4.0, tasks), rng);
  }
  static Observation MakeObs(const EventLog& log, double fraction, std::uint64_t seed) {
    Rng rng(seed + 1);
    TaskSamplingScheme scheme;
    scheme.fraction = fraction;
    return scheme.Apply(log, rng);
  }
};

void ExpectLogsIdentical(const EventLog& a, const EventLog& b) {
  ASSERT_EQ(a.NumEvents(), b.NumEvents());
  ASSERT_EQ(a.NumTasks(), b.NumTasks());
  ASSERT_EQ(a.NumQueues(), b.NumQueues());
  for (EventId e = 0; static_cast<std::size_t>(e) < a.NumEvents(); ++e) {
    const Event& ea = a.At(e);
    const Event& eb = b.At(e);
    EXPECT_EQ(ea.task, eb.task);
    EXPECT_EQ(ea.state, eb.state);
    EXPECT_EQ(ea.queue, eb.queue);
    EXPECT_EQ(ea.arrival, eb.arrival);      // bitwise: same doubles copied through
    EXPECT_EQ(ea.departure, eb.departure);
    EXPECT_EQ(ea.pi, eb.pi);
    EXPECT_EQ(ea.tau, eb.tau);
    EXPECT_EQ(ea.rho, eb.rho);
    EXPECT_EQ(ea.nu, eb.nu);
    EXPECT_EQ(ea.initial, eb.initial);
  }
}

void ExpectEstimatesIdentical(const std::vector<WindowEstimate>& a,
                              const std::vector<WindowEstimate>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t w = 0; w < a.size(); ++w) {
    EXPECT_EQ(a[w].t0, b[w].t0) << "window " << w;
    EXPECT_EQ(a[w].t1, b[w].t1) << "window " << w;
    EXPECT_EQ(a[w].tasks, b[w].tasks) << "window " << w;
    EXPECT_EQ(a[w].merged_tail_tasks, b[w].merged_tail_tasks) << "window " << w;
    EXPECT_EQ(a[w].degraded, b[w].degraded) << "window " << w;
    EXPECT_EQ(a[w].fit_iterations, b[w].fit_iterations) << "window " << w;
    ASSERT_EQ(a[w].rates.size(), b[w].rates.size());
    for (std::size_t q = 0; q < a[w].rates.size(); ++q) {
      EXPECT_EQ(a[w].rates[q], b[w].rates[q]) << "window " << w << " q=" << q;
    }
    ASSERT_EQ(a[w].mean_wait.size(), b[w].mean_wait.size());
    for (std::size_t q = 0; q < a[w].mean_wait.size(); ++q) {
      EXPECT_EQ(a[w].mean_wait[q], b[w].mean_wait[q]) << "window " << w << " q=" << q;
    }
  }
}

// --- WindowLogBuilder ------------------------------------------------------------------

TEST(WindowLogBuilder, MatchesExtractTaskWindow) {
  const Fixture f;
  const std::vector<int> tasks = {3, 4, 5, 6, 10, 11, 40, 41, 42};
  const auto [batch_log, batch_obs] = ExtractTaskWindow(f.truth, f.obs, tasks);

  WindowLogBuilder builder(f.truth.NumQueues());
  for (const int task : tasks) {
    builder.Add(MakeTaskRecord(f.truth, f.obs, task));
  }
  const auto [stream_log, stream_obs] = builder.Finish();

  ExpectLogsIdentical(batch_log, stream_log);
  EXPECT_EQ(batch_obs.arrival_observed, stream_obs.arrival_observed);
  EXPECT_EQ(batch_obs.departure_observed, stream_obs.departure_observed);
  EXPECT_EQ(batch_obs.observed_tasks, stream_obs.observed_tasks);
}

TEST(WindowLogBuilder, IsReusableAcrossWindows) {
  const Fixture f;
  WindowLogBuilder builder(f.truth.NumQueues());
  builder.Add(MakeTaskRecord(f.truth, f.obs, 0));
  builder.Add(MakeTaskRecord(f.truth, f.obs, 1));
  const auto [first_log, first_obs] = builder.Finish();
  EXPECT_EQ(first_log.NumTasks(), 2);

  builder.Add(MakeTaskRecord(f.truth, f.obs, 2));
  const auto [second_log, second_obs] = builder.Finish();
  EXPECT_EQ(second_log.NumTasks(), 1);
  EXPECT_EQ(second_log.TaskEntryTime(0), f.truth.TaskEntryTime(2));
  second_obs.Validate(second_log);
}

// --- Replay streams --------------------------------------------------------------------

TEST(LogReplayStream, YieldsEveryTaskInOrder) {
  const Fixture f(0.5, 50);
  LogReplayStream stream(f.truth, f.obs);
  EXPECT_EQ(stream.NumQueues(), f.truth.NumQueues());
  TaskRecord record;
  int count = 0;
  double last_entry = 0.0;
  while (stream.Next(record)) {
    EXPECT_EQ(record, MakeTaskRecord(f.truth, f.obs, count));
    EXPECT_GE(record.entry_time, last_entry);
    last_entry = record.entry_time;
    ++count;
  }
  EXPECT_EQ(count, f.truth.NumTasks());
}

TEST(CsvReplayStream, MatchesLogReplayExactly) {
  const Fixture f(0.4, 60);
  std::stringstream log_csv;
  std::stringstream obs_csv;
  WriteEventLog(log_csv, f.truth);
  WriteObservation(obs_csv, f.obs);

  // num_queues comes from the '# queues=N' header.
  CsvReplayStream csv_stream(log_csv, -1, &obs_csv);
  EXPECT_EQ(csv_stream.NumQueues(), f.truth.NumQueues());
  LogReplayStream log_stream(f.truth, f.obs);

  TaskRecord from_csv;
  TaskRecord from_log;
  int tasks = 0;
  while (log_stream.Next(from_log)) {
    ASSERT_TRUE(csv_stream.Next(from_csv));
    ASSERT_EQ(from_csv.visits.size(), from_log.visits.size()) << "task " << tasks;
    // Times round-trip exactly (setprecision(17)); arrival flags match. Internal
    // departure flags may differ in representation but are re-derived by the builder.
    EXPECT_EQ(from_csv.entry_time, from_log.entry_time) << "task " << tasks;
    for (std::size_t i = 0; i < from_log.visits.size(); ++i) {
      EXPECT_EQ(from_csv.visits[i].queue, from_log.visits[i].queue);
      EXPECT_EQ(from_csv.visits[i].state, from_log.visits[i].state);
      EXPECT_EQ(from_csv.visits[i].arrival, from_log.visits[i].arrival);
      EXPECT_EQ(from_csv.visits[i].departure, from_log.visits[i].departure);
      EXPECT_EQ(from_csv.visits[i].arrival_observed, from_log.visits[i].arrival_observed);
      EXPECT_EQ(from_csv.visits[i].departure_observed,
                from_log.visits[i].departure_observed);
    }
    ++tasks;
  }
  EXPECT_FALSE(csv_stream.Next(from_csv));
  EXPECT_EQ(tasks, f.truth.NumTasks());
}

TEST(CsvReplayStream, HeaderlessFilesNeedExplicitNumQueues) {
  const Fixture f(1.0, 10);
  std::stringstream with_header;
  WriteEventLog(with_header, f.truth);
  // Strip the '# queues=N' line to simulate a legacy file.
  std::string all = with_header.str();
  const std::string headerless = all.substr(all.find('\n') + 1);

  std::stringstream no_header(headerless);
  EXPECT_THROW(CsvReplayStream(no_header, -1), Error);
  std::stringstream no_header2(headerless);
  CsvReplayStream stream(no_header2, f.truth.NumQueues());
  TaskRecord record;
  EXPECT_TRUE(stream.Next(record));
  EXPECT_EQ(record.entry_time, f.truth.TaskEntryTime(0));

  // A wrong explicit count contradicting the header is rejected.
  std::stringstream with_header2(all);
  EXPECT_THROW(CsvReplayStream(with_header2, f.truth.NumQueues() + 1), Error);
}

// --- WindowAssembler -------------------------------------------------------------------

TaskRecord TinyRecord(double entry, double service = 0.01) {
  TaskRecord record;
  record.entry_time = entry;
  TaskVisit visit;
  visit.state = 0;
  visit.queue = 1;
  visit.arrival = entry;
  visit.departure = entry + service;
  record.visits.push_back(visit);
  return record;
}

TEST(WindowAssembler, ClosesWindowsAtWatermarkAndMergesSmallOnes) {
  WindowAssemblerOptions options;
  options.window_duration = 10.0;
  options.min_tasks_per_window = 3;
  WindowAssembler assembler(2, options);

  // Window [0,10): 3 tasks; [10,20): only 2 tasks -> merges into [10,30).
  for (const double t : {1.0, 2.0, 3.0, 11.0, 12.0}) {
    assembler.Push(TinyRecord(t));
  }
  EXPECT_TRUE(assembler.HasClosed());  // [0,10) closed when the 11.0 record arrived
  assembler.Push(TinyRecord(21.0));  // watermark 21 >= 20, but [10,20) has 2 < 3 tasks
  assembler.Push(TinyRecord(25.0));
  assembler.Push(TinyRecord(29.5));
  assembler.Push(TinyRecord(31.0));  // watermark 31 >= 30: closes [10,30) with 5 tasks

  std::vector<ClosedWindow> closed;
  while (assembler.HasClosed()) {
    closed.push_back(assembler.PopClosed());
  }
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].t0, 0.0);
  EXPECT_EQ(closed[0].t1, 10.0);
  EXPECT_EQ(closed[0].num_tasks, 3u);
  EXPECT_EQ(closed[1].t0, 10.0);
  EXPECT_EQ(closed[1].t1, 30.0);  // span extended over the too-small [10,20)
  EXPECT_EQ(closed[1].num_tasks, 5u);

  assembler.FinishStream();  // single remaining task (31.0), previous window exists
  ASSERT_TRUE(assembler.HasClosed());
  const ClosedWindow tail = assembler.PopClosed();
  EXPECT_EQ(tail.merged_tail_tasks, 1u);
  EXPECT_EQ(tail.t0, 10.0);  // replaces the previous window, span extended
  EXPECT_EQ(tail.num_tasks, 6u);
  EXPECT_EQ(assembler.Stats().tail_dropped, 0u);
}

TEST(WindowAssembler, FirstWindowClosesOnArrivalPastEnd) {
  WindowAssemblerOptions options;
  options.window_duration = 10.0;
  options.min_tasks_per_window = 2;
  WindowAssembler assembler(2, options);
  assembler.Push(TinyRecord(1.0));
  assembler.Push(TinyRecord(2.0));
  EXPECT_FALSE(assembler.HasClosed());
  assembler.Push(TinyRecord(10.5));
  ASSERT_TRUE(assembler.HasClosed());
  EXPECT_EQ(assembler.PopClosed().num_tasks, 2u);
}

TEST(WindowAssembler, LateRecordPolicies) {
  WindowAssemblerOptions options;
  options.window_duration = 10.0;
  options.min_tasks_per_window = 2;
  options.late_policy = LateRecordPolicy::kDrop;
  {
    WindowAssembler assembler(2, options);
    assembler.Push(TinyRecord(1.0));
    assembler.Push(TinyRecord(2.0));
    assembler.Push(TinyRecord(11.0));  // closes [0,10)
    ASSERT_TRUE(assembler.HasClosed());
    assembler.PopClosed();
    assembler.Push(TinyRecord(5.0));  // late: belongs to the closed [0,10)
    EXPECT_EQ(assembler.Stats().late_dropped, 1u);
    assembler.Push(TinyRecord(12.0));
    assembler.FinishStream();
    ASSERT_TRUE(assembler.HasClosed());
    EXPECT_EQ(assembler.PopClosed().num_tasks, 2u);  // the late record is gone
  }
  options.late_policy = LateRecordPolicy::kMergeIntoCurrent;
  {
    WindowAssembler assembler(2, options);
    assembler.Push(TinyRecord(1.0));
    assembler.Push(TinyRecord(2.0));
    assembler.Push(TinyRecord(11.0));
    assembler.PopClosed();
    assembler.Push(TinyRecord(5.0));  // late: folded into the open [10,...) window
    assembler.Push(TinyRecord(12.0));
    assembler.FinishStream();
    EXPECT_EQ(assembler.Stats().late_dropped, 0u);
    ASSERT_TRUE(assembler.HasClosed());
    const ClosedWindow window = assembler.PopClosed();
    EXPECT_EQ(window.num_tasks, 3u);
    // The late record sorts first within the window's log.
    EXPECT_EQ(window.log.TaskEntryTime(0), 5.0);
  }
}

TEST(WindowAssembler, AllowedLatenessHoldsWindowsOpen) {
  WindowAssemblerOptions options;
  options.window_duration = 10.0;
  options.min_tasks_per_window = 2;
  options.allowed_lateness = 5.0;
  WindowAssembler assembler(2, options);
  assembler.Push(TinyRecord(1.0));
  assembler.Push(TinyRecord(2.0));
  assembler.Push(TinyRecord(11.0));  // watermark 11 - 5 = 6 < 10: stays open
  EXPECT_FALSE(assembler.HasClosed());
  assembler.Push(TinyRecord(9.0));  // within lateness: sorted into [0,10)
  assembler.Push(TinyRecord(16.0));  // watermark 16 - 5 = 11 >= 10: closes
  ASSERT_TRUE(assembler.HasClosed());
  const ClosedWindow window = assembler.PopClosed();
  EXPECT_EQ(window.num_tasks, 3u);
  EXPECT_EQ(window.log.TaskEntryTime(2), 9.0);
  EXPECT_EQ(assembler.Stats().late_dropped, 0u);
}

TEST(WindowAssembler, TailMergesIntoWindowClosedDuringFinish) {
  // Regression: with allowed_lateness > 0 a window's close can be deferred until
  // FinishStream releases the watermark hold-back. The trailing merge must target THAT
  // window — the true last one — not an earlier close retained during Push.
  WindowAssemblerOptions options;
  options.window_duration = 10.0;
  options.min_tasks_per_window = 2;
  options.allowed_lateness = 5.0;
  WindowAssembler assembler(2, options);
  for (const double t : {1.0, 2.0, 11.0, 12.0, 21.0}) {
    assembler.Push(TinyRecord(t));
  }
  // Watermark 21 - 5 = 16: only [0,10) has closed so far.
  assembler.FinishStream();
  std::vector<ClosedWindow> closed;
  while (assembler.HasClosed()) {
    closed.push_back(assembler.PopClosed());
  }
  ASSERT_EQ(closed.size(), 3u);
  EXPECT_EQ(closed[0].t0, 0.0);
  EXPECT_EQ(closed[0].num_tasks, 2u);
  EXPECT_EQ(closed[1].t0, 10.0);  // deferred close, released by FinishStream
  EXPECT_EQ(closed[1].t1, 20.0);
  EXPECT_EQ(closed[1].num_tasks, 2u);
  // The tail {21} merges into [10,20) — the window closed during FinishStream.
  EXPECT_EQ(closed[2].merged_tail_tasks, 1u);
  EXPECT_EQ(closed[2].t0, 10.0);
  EXPECT_EQ(closed[2].num_tasks, 3u);
  EXPECT_EQ(closed[2].log.TaskEntryTime(0), 11.0);
  EXPECT_EQ(closed[2].log.TaskEntryTime(2), 21.0);
  EXPECT_EQ(assembler.Stats().tail_dropped, 0u);
}

TEST(WindowAssembler, TailMergesWhenEveryWindowClosesAtFinish) {
  // Regression: large lateness can defer every close to FinishStream; the 1-task tail
  // must still find the previous window instead of being dropped.
  WindowAssemblerOptions options;
  options.window_duration = 10.0;
  options.min_tasks_per_window = 2;
  options.allowed_lateness = 25.0;
  WindowAssembler assembler(2, options);
  for (const double t : {1.0, 2.0, 21.0}) {
    assembler.Push(TinyRecord(t));
  }
  EXPECT_FALSE(assembler.HasClosed());
  assembler.FinishStream();
  std::vector<ClosedWindow> closed;
  while (assembler.HasClosed()) {
    closed.push_back(assembler.PopClosed());
  }
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].num_tasks, 2u);
  EXPECT_EQ(closed[1].merged_tail_tasks, 1u);
  EXPECT_EQ(closed[1].num_tasks, 3u);
  EXPECT_EQ(assembler.Stats().tail_dropped, 0u);
}

TEST(WindowAssembler, FastForwardsOverHugeIdleGaps) {
  // Epoch-style timestamps far from t = 0 (or long idle gaps) must not cost one loop
  // iteration per empty duration: ~28M empty 60 s windows precede these records.
  WindowAssemblerOptions options;
  options.window_duration = 60.0;
  options.min_tasks_per_window = 2;
  WindowAssembler assembler(2, options);
  const double epoch = 1.7e9;
  assembler.Push(TinyRecord(epoch + 1.0));
  assembler.Push(TinyRecord(epoch + 2.0));
  assembler.Push(TinyRecord(epoch + 70.0));
  ASSERT_TRUE(assembler.HasClosed());
  const ClosedWindow window = assembler.PopClosed();
  EXPECT_EQ(window.num_tasks, 2u);
  EXPECT_LE(window.t0, epoch + 1.0);
  EXPECT_GT(window.t1, epoch + 2.0);
  assembler.FinishStream();
  ASSERT_TRUE(assembler.HasClosed());
  EXPECT_EQ(assembler.PopClosed().merged_tail_tasks, 1u);
}

TEST(WindowAssembler, PeakBufferIsIndependentOfTraceLength) {
  // Uniformly spaced entries: the buffer high-water mark is one windowful regardless of
  // how long the stream runs — the bounded-memory contract.
  WindowAssemblerOptions options;
  options.window_duration = 10.0;
  options.min_tasks_per_window = 2;
  std::size_t peak_short = 0;
  std::size_t peak_long = 0;
  for (const std::size_t tasks : {200u, 2000u}) {
    WindowAssembler assembler(2, options);
    for (std::size_t k = 0; k < tasks; ++k) {
      assembler.Push(TinyRecord(0.5 + static_cast<double>(k)));
      while (assembler.HasClosed()) {
        assembler.PopClosed();
      }
    }
    assembler.FinishStream();
    while (assembler.HasClosed()) {
      assembler.PopClosed();
    }
    (tasks == 200u ? peak_short : peak_long) = assembler.Stats().peak_buffered_tasks;
  }
  EXPECT_EQ(peak_short, peak_long);
  // One open windowful plus the previous window's records retained for the tail merge.
  EXPECT_LE(peak_long, 22u);
}

// --- StreamingEstimator ----------------------------------------------------------------

StreamingEstimatorOptions ShortStemOptions(double window_duration = 25.0) {
  StreamingEstimatorOptions options;
  options.window.window_duration = window_duration;
  options.stem.iterations = 30;
  options.stem.burn_in = 10;
  options.stem.wait_sweeps = 5;
  return options;
}

// Reference implementation: batch windowing via ExtractTaskWindow with the same grouping,
// seeding, and trailing-merge rules the streaming engine promises. Pins the semantics the
// assembler + estimator must reproduce bit-for-bit.
std::vector<WindowEstimate> ReferenceWindowedStem(const EventLog& truth,
                                                  const Observation& obs,
                                                  std::vector<double> init_rates,
                                                  std::uint64_t seed,
                                                  const StreamingEstimatorOptions& options) {
  const StemEstimator estimator(options.stem);
  const std::size_t min_needed =
      std::max<std::size_t>(options.window.min_tasks_per_window, 2);
  std::vector<WindowEstimate> estimates;
  std::vector<int> pending;
  std::vector<int> last_window_tasks;
  double window_start = 0.0;
  double window_end = options.window.window_duration;
  double last_window_t0 = 0.0;
  std::vector<double> rates = std::move(init_rates);
  std::vector<double> prev_input_rates = rates;
  std::size_t window_index = 0;

  const auto estimate_window = [&](const std::vector<int>& tasks, double t0, double t1,
                                   const std::vector<double>& warm, std::uint64_t index,
                                   std::size_t merged_tail) {
    const auto [window, window_obs] = ExtractTaskWindow(truth, obs, tasks);
    Rng rng(MixSeed(seed, index));
    const StemResult result = estimator.Run(window, window_obs, warm, rng);
    WindowEstimate est;
    est.t0 = t0;
    est.t1 = t1;
    est.tasks = tasks.size();
    est.merged_tail_tasks = merged_tail;
    est.rates = result.rates;
    est.mean_wait = result.mean_wait;
    est.fit_iterations = result.iterations_run;
    return est;
  };

  for (int task = 0; task < truth.NumTasks(); ++task) {
    const double entry = truth.TaskEntryTime(task);
    while (entry >= window_end) {
      if (pending.size() >= min_needed) {
        prev_input_rates = rates;
        WindowEstimate est = estimate_window(pending, window_start, window_end, rates,
                                             window_index, 0);
        rates = est.rates;
        estimates.push_back(std::move(est));
        last_window_tasks = pending;
        last_window_t0 = window_start;
        ++window_index;
        pending.clear();
        window_start = window_end;
      }
      window_end += options.window.window_duration;
    }
    pending.push_back(task);
  }
  if (pending.size() >= min_needed) {
    WindowEstimate est =
        estimate_window(pending, window_start, window_end, rates, window_index, 0);
    estimates.push_back(std::move(est));
  } else if (!pending.empty() && !estimates.empty()) {
    std::vector<int> merged = last_window_tasks;
    merged.insert(merged.end(), pending.begin(), pending.end());
    estimates.back() = estimate_window(merged, last_window_t0, window_end,
                                       prev_input_rates, window_index - 1, pending.size());
  } else if (pending.size() >= 2) {
    WindowEstimate est =
        estimate_window(pending, window_start, window_end, rates, window_index, 0);
    estimates.push_back(std::move(est));
  }
  return estimates;
}

TEST(StreamingEstimator, MatchesBatchReferenceBitIdentically) {
  const Fixture f;
  const std::vector<double> init = {1.0, 1.0, 1.0};
  const std::uint64_t seed = 99;
  const StreamingEstimatorOptions options = ShortStemOptions();

  const auto reference = ReferenceWindowedStem(f.truth, f.obs, init, seed, options);
  LogReplayStream stream(f.truth, f.obs);
  StreamingEstimator estimator(init, seed, options);
  const auto streamed = estimator.Run(stream);

  ASSERT_GE(reference.size(), 3u);
  ExpectEstimatesIdentical(reference, streamed);
}

TEST(StreamingEstimator, BitIdenticalAcrossThreadCountsAndPipelining) {
  // The acceptance bar: 1/2/4 sharded-sweep threads, pipelining on or off — the window
  // estimate sequence is bit-identical; only wall-clock may change.
  const Fixture f;
  const std::vector<double> init = {1.0, 1.0, 1.0};
  const std::uint64_t seed = 5;
  StreamingEstimatorOptions options = ShortStemOptions();
  options.stem.sharded_sweeps = true;
  options.stem.sharded.shards = 2;

  std::vector<std::vector<WindowEstimate>> runs;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    for (const bool pipeline : {false, true}) {
      options.stem.sharded.threads = threads;
      options.pipeline = pipeline;
      LogReplayStream stream(f.truth, f.obs);
      StreamingEstimator estimator(init, seed, options);
      runs.push_back(estimator.Run(stream));
    }
  }
  ASSERT_GE(runs.front().size(), 3u);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    ExpectEstimatesIdentical(runs.front(), runs[i]);
  }
}

TEST(StreamingEstimator, RunOnlineStemIsAThinAdapter) {
  // RunOnlineStem(rng) == StreamingEstimator(seed = rng.NextU64()) over a replay stream.
  const Fixture f;
  OnlineStemOptions online;
  online.window_duration = 25.0;
  online.stem.iterations = 30;
  online.stem.burn_in = 10;
  online.stem.wait_sweeps = 0;

  Rng rng(123);
  const auto adapter = RunOnlineStem(f.truth, f.obs, {1.0, 1.0, 1.0}, rng, online);

  Rng seed_rng(123);
  StreamingEstimatorOptions options;
  options.window.window_duration = online.window_duration;
  options.window.min_tasks_per_window = online.min_tasks_per_window;
  options.stem = online.stem;
  LogReplayStream stream(f.truth, f.obs);
  StreamingEstimator estimator({1.0, 1.0, 1.0}, seed_rng.NextU64(), options);
  const auto streamed = estimator.Run(stream);

  ExpectEstimatesIdentical(adapter, streamed);
}

TEST(StreamingEstimator, CsvReplayMatchesInMemoryReplay) {
  const Fixture f;
  const std::vector<double> init = {1.0, 1.0, 1.0};
  const StreamingEstimatorOptions options = ShortStemOptions();

  LogReplayStream memory_stream(f.truth, f.obs);
  StreamingEstimator memory_estimator(init, 17, options);
  const auto from_memory = memory_estimator.Run(memory_stream);

  std::stringstream log_csv;
  std::stringstream obs_csv;
  WriteEventLog(log_csv, f.truth);
  WriteObservation(obs_csv, f.obs);
  CsvReplayStream csv_stream(log_csv, -1, &obs_csv);
  StreamingEstimator csv_estimator(init, 17, options);
  const auto from_csv = csv_estimator.Run(csv_stream);

  ExpectEstimatesIdentical(from_memory, from_csv);
}

TEST(StreamingEstimator, TrailingWindowIsMergedNotDropped) {
  // Regression for the batch-era data loss: a final window with fewer than
  // min_tasks_per_window tasks used to vanish in the last flush. Now it merges into the
  // previous window's span and the last estimate is re-fit over the union.
  const QueueingNetwork net = MakeSingleQueueNetwork(4.0, 8.0);
  Rng rng(31);
  EventLog truth = SimulateWorkload(net, PoissonArrivals(4.0, 120), rng);
  const Observation obs = Observation::FullyObserved(truth);

  OnlineStemOptions options;
  // Choose a duration so the last window holds only a couple of tasks: entries run to
  // roughly 120/4 = 30s; a 12s window leaves a small remainder with high probability.
  options.window_duration = 12.0;
  options.min_tasks_per_window = 30;
  options.stem.iterations = 20;
  options.stem.burn_in = 5;
  options.stem.wait_sweeps = 0;

  Rng est_rng(7);
  const auto estimates =
      RunOnlineStem(truth, obs, {1.0, 1.0}, est_rng, options);
  ASSERT_GE(estimates.size(), 1u);
  std::size_t total_tasks = 0;
  for (const auto& est : estimates) {
    total_tasks += est.tasks;
  }
  const std::size_t merged = estimates.back().merged_tail_tasks;
  // Every task is accounted for: either the tail made a full window (merged == 0 and the
  // counts already sum) or it was merged into the final estimate.
  EXPECT_EQ(total_tasks, static_cast<std::size_t>(truth.NumTasks()));
  // The final estimate's span covers the last task's entry time.
  EXPECT_GE(estimates.back().t1, truth.TaskEntryTime(truth.NumTasks() - 1));
  if (merged > 0) {
    EXPECT_LT(merged, std::max<std::size_t>(options.min_tasks_per_window, 2));
  }
}

TEST(StreamingEstimator, TinyStreamWithNoFullWindowStillEstimates) {
  // 3 tasks, all inside the first (never-closing) window: with no previous window to
  // merge into, a >= 2-task remainder is emitted instead of silently dropped.
  const QueueingNetwork net = MakeSingleQueueNetwork(2.0, 8.0);
  Rng rng(3);
  EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 3), rng);
  const Observation obs = Observation::FullyObserved(truth);

  OnlineStemOptions options;
  options.window_duration = 1000.0;
  options.min_tasks_per_window = 8;
  options.stem.iterations = 10;
  options.stem.burn_in = 2;
  options.stem.wait_sweeps = 0;
  Rng est_rng(9);
  const auto estimates = RunOnlineStem(truth, obs, {1.0, 1.0}, est_rng, options);
  ASSERT_EQ(estimates.size(), 1u);
  EXPECT_EQ(estimates.front().tasks, 3u);
}

TEST(StreamingEstimator, ReportsThroughputStats) {
  const Fixture f;
  const StreamingEstimatorOptions options = ShortStemOptions();
  LogReplayStream stream(f.truth, f.obs);
  StreamingEstimator estimator({1.0, 1.0, 1.0}, 1, options);
  const auto estimates = estimator.Run(stream);
  const StreamingStats& stats = estimator.Stats();
  EXPECT_EQ(stats.tasks_ingested, static_cast<std::size_t>(f.truth.NumTasks()));
  EXPECT_EQ(stats.windows_estimated, estimates.size());
  EXPECT_GT(stats.tasks_per_second, 0.0);
  EXPECT_GT(stats.total_wall_seconds, 0.0);
  EXPECT_EQ(stats.late_dropped, 0u);
  EXPECT_GT(stats.peak_buffered_tasks, 0u);
  EXPECT_LT(stats.peak_buffered_tasks, static_cast<std::size_t>(f.truth.NumTasks()));
}

// --- Window-local arrival-rate anchoring -------------------------------------------------

TEST(StreamingEstimator, WindowLocalAnchoringFixesLambdaDecay) {
  // Regression for the PR-4 forecaster wart: the StEM lambda iterate divides the task
  // count by the ABSOLUTE last entry time, so on a stream whose windows sit far from
  // t = 0 it decays toward zero. Window-local anchoring divides by the window's own
  // span instead. Default off preserves the historical behavior.
  const QueueingNetwork net = MakeSingleQueueNetwork(4.0, 10.0);
  Rng rng(19);
  EventLog truth = SimulateWorkload(net, PoissonArrivals(4.0, 1200), rng);
  const Observation obs = Observation::FullyObserved(truth);
  // Shift the whole trace 1000 s into the future (an epoch-style collector timestamp).
  const double shift = 1000.0;
  std::vector<TaskRecord> records;
  for (int task = 0; task < truth.NumTasks(); ++task) {
    TaskRecord record = MakeTaskRecord(truth, obs, task);
    record.entry_time += shift;
    for (TaskVisit& visit : record.visits) {
      visit.arrival += shift;
      visit.departure += shift;
    }
    records.push_back(std::move(record));
  }

  StreamingEstimatorOptions options;
  options.window.window_duration = 50.0;
  options.stem.iterations = 30;
  options.stem.burn_in = 10;
  options.stem.wait_sweeps = 0;

  qnet_testing::VectorStream legacy_stream(records, 2);
  StreamingEstimator legacy({1.0, 1.0}, 3, options);
  const auto unanchored = legacy.Run(legacy_stream);

  options.window_local_arrival_rate = true;
  qnet_testing::VectorStream anchored_stream(records, 2);
  StreamingEstimator anchored({1.0, 1.0}, 3, options);
  const auto window_local = anchored.Run(anchored_stream);

  ASSERT_GE(window_local.size(), 3u);
  ASSERT_EQ(window_local.size(), unanchored.size());
  // Skip window 0: its span starts at the t = 0 grid origin, where the two anchorings
  // coincide. Every later window sits ~1000 s from the origin.
  for (std::size_t w = 1; w < window_local.size(); ++w) {
    EXPECT_FALSE(unanchored[w].window_local_arrival_rate);
    EXPECT_TRUE(window_local[w].window_local_arrival_rate);
    // Decayed: the absolute anchor divides ~200 tasks by ~1000+ s.
    EXPECT_LT(unanchored[w].rates[0], 1.0) << "window " << w;
    // Window-local: tracks the true arrival rate of 4/s.
    EXPECT_NEAR(window_local[w].rates[0], 4.0, 1.0) << "window " << w;
    // The empirical rate the forecaster falls back to agrees with the anchored fit —
    // except on the final window, whose span may extend past the last arrival (grid
    // alignment / tail merge), deflating the empirical count-per-span.
    if (w + 1 < window_local.size()) {
      const double empirical = static_cast<double>(window_local[w].tasks) /
                               (window_local[w].t1 - window_local[w].t0);
      EXPECT_NEAR(window_local[w].rates[0], empirical, 0.75) << "window " << w;
    }
  }
}

TEST(StreamingEstimator, ExplicitZeroOriginIsBitIdenticalToDefault) {
  // The anchoring plumbing must not perturb the default path: origin 0.0 subtracts
  // exactly nothing from the M-step's queue-0 sum.
  const Fixture f;
  StreamingEstimatorOptions options = ShortStemOptions();
  LogReplayStream default_stream(f.truth, f.obs);
  StreamingEstimator default_estimator({1.0, 1.0, 1.0}, 29, options);
  const auto by_default = default_estimator.Run(default_stream);

  options.stem.arrival_time_origin = 0.0;  // explicit no-op
  LogReplayStream explicit_stream(f.truth, f.obs);
  StreamingEstimator explicit_estimator({1.0, 1.0, 1.0}, 29, options);
  const auto by_explicit = explicit_estimator.Run(explicit_stream);
  ExpectEstimatesIdentical(by_default, by_explicit);
}

// --- Mean-field fast path ----------------------------------------------------------------

TEST(StreamingEstimator, FastPathOffIsBitIdenticalToDefault) {
  // Carrying fast-path configuration with the mode off must not perturb the sampler
  // path by a bit: mean_field options and the degrade budget are dormant under kOff.
  const Fixture f;
  LogReplayStream default_stream(f.truth, f.obs);
  StreamingEstimator default_estimator({1.0, 1.0, 1.0}, 61, ShortStemOptions());
  const auto by_default = default_estimator.Run(default_stream);

  StreamingEstimatorOptions options = ShortStemOptions();
  options.fast_path = FastPathMode::kOff;
  options.degrade_task_budget = 10;  // dormant without kDegrade
  options.mean_field.fallback_rate = 123.0;
  LogReplayStream explicit_stream(f.truth, f.obs);
  StreamingEstimator explicit_estimator({1.0, 1.0, 1.0}, 61, options);
  const auto by_explicit = explicit_estimator.Run(explicit_stream);

  ExpectEstimatesIdentical(by_default, by_explicit);
  EXPECT_EQ(explicit_estimator.Stats().degraded_windows, 0u);
  for (const WindowEstimate& estimate : by_default) {
    EXPECT_FALSE(estimate.degraded);
    EXPECT_EQ(estimate.fit_iterations, 30u);  // full StEM run per window
  }
}

TEST(StreamingEstimator, WarmStartFastPathSavesIterationsDeterministically) {
  const Fixture f;
  const std::vector<double> init = {1.0, 1.0, 1.0};

  StreamingEstimatorOptions off = ShortStemOptions();
  LogReplayStream off_stream(f.truth, f.obs);
  StreamingEstimator off_estimator(init, 67, off);
  const auto baseline = off_estimator.Run(off_stream);
  ASSERT_GE(baseline.size(), 3u);

  StreamingEstimatorOptions warm = ShortStemOptions();
  warm.fast_path = FastPathMode::kWarmStart;
  warm.stem.convergence_tol = 0.05;
  warm.stem.convergence_patience = 2;

  // Bit-identical across pipelining and sharded thread counts, like the sampler path.
  std::vector<std::vector<WindowEstimate>> runs;
  std::size_t iterations_total = 0;
  for (const std::size_t threads : {1u, 2u}) {
    for (const bool pipeline : {false, true}) {
      StreamingEstimatorOptions options = warm;
      options.stem.sharded_sweeps = true;
      options.stem.sharded.shards = 2;
      options.stem.sharded.threads = threads;
      options.pipeline = pipeline;
      LogReplayStream stream(f.truth, f.obs);
      StreamingEstimator estimator(init, 67, options);
      runs.push_back(estimator.Run(stream));
      iterations_total = estimator.Stats().fit_iterations_total;
    }
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    ExpectEstimatesIdentical(runs.front(), runs[i]);
  }

  // Early stop must actually bite (that is the throughput win) ...
  EXPECT_LT(iterations_total, baseline.size() * 30u);
  EXPECT_GT(iterations_total, 0u);
  for (const WindowEstimate& estimate : runs.front()) {
    EXPECT_FALSE(estimate.degraded);
    EXPECT_GE(estimate.fit_iterations, warm.stem.burn_in + 3u);
  }
  // ... while the estimates stay close to the cold-started full-length run.
  ASSERT_EQ(runs.front().size(), baseline.size());
  for (std::size_t w = 0; w < baseline.size(); ++w) {
    for (std::size_t q = 1; q < 3; ++q) {
      EXPECT_NEAR(runs.front()[w].rates[q], baseline[w].rates[q],
                  0.2 * baseline[w].rates[q])
          << "window " << w << " q=" << q;
    }
  }
}

TEST(StreamingEstimator, MeanFieldOnlyModeIsSamplerFreeAndBitIdentical) {
  const Fixture f;
  const std::vector<double> init = {1.0, 1.0, 1.0};
  StreamingEstimatorOptions options = ShortStemOptions();
  options.fast_path = FastPathMode::kMeanFieldOnly;

  std::vector<std::vector<WindowEstimate>> runs;
  std::size_t degraded = 0;
  for (const bool pipeline : {false, true}) {
    for (const std::uint64_t seed : {71u, 73u}) {
      options.pipeline = pipeline;
      LogReplayStream stream(f.truth, f.obs);
      StreamingEstimator estimator(init, seed, options);
      runs.push_back(estimator.Run(stream));
      degraded = estimator.Stats().degraded_windows;
    }
  }
  // Sampler-free: the seed is never consumed, so even DIFFERENT seeds are bit-identical.
  ASSERT_GE(runs.front().size(), 3u);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    ExpectEstimatesIdentical(runs.front(), runs[i]);
  }
  EXPECT_GE(degraded, runs.front().size());
  for (const WindowEstimate& estimate : runs.front()) {
    EXPECT_TRUE(estimate.degraded);
    EXPECT_EQ(estimate.fit_iterations, 0u);
    ASSERT_EQ(estimate.rates.size(), 3u);
    ASSERT_EQ(estimate.mean_wait.size(), 3u);
    // Mean-field service estimates land on the right scale (truth: mu = 8, 9).
    EXPECT_NEAR(1.0 / estimate.rates[1], 1.0 / 8.0, 0.5 / 8.0);
    EXPECT_NEAR(1.0 / estimate.rates[2], 1.0 / 9.0, 0.5 / 9.0);
  }
}

TEST(StreamingEstimator, DegradeModeTriggersOnWindowTaskCount) {
  const Fixture f;
  const std::vector<double> init = {1.0, 1.0, 1.0};
  StreamingEstimatorOptions options = ShortStemOptions();
  options.fast_path = FastPathMode::kDegrade;
  options.degrade_task_budget = 100;

  LogReplayStream stream(f.truth, f.obs);
  StreamingEstimator estimator(init, 79, options);
  const auto estimates = estimator.Run(stream);
  ASSERT_GE(estimates.size(), 3u);

  std::size_t degraded = 0;
  for (const WindowEstimate& estimate : estimates) {
    // The trigger is the window's task count — reproducible from the estimate itself.
    EXPECT_EQ(estimate.degraded, estimate.tasks > options.degrade_task_budget);
    EXPECT_EQ(estimate.fit_iterations == 0, estimate.degraded);
    degraded += estimate.degraded ? 1 : 0;
  }
  EXPECT_GT(degraded, 0u) << "budget chosen so the busiest windows degrade";
  EXPECT_LT(degraded, estimates.size()) << "budget chosen so quiet windows still sample";
  EXPECT_EQ(estimator.Stats().degraded_windows, degraded);

  // Deterministic: same stream, same options, same bits (with pipelining flipped).
  options.pipeline = !options.pipeline;
  LogReplayStream again_stream(f.truth, f.obs);
  StreamingEstimator again(init, 79, options);
  ExpectEstimatesIdentical(estimates, again.Run(again_stream));
}

// --- LiveSimStream ---------------------------------------------------------------------

TEST(LiveSimStream, ProducesFeasibleEntryOrderedTasks) {
  const QueueingNetwork net = MakeTandemNetwork(3.0, {6.0, 7.0});
  LiveSimOptions options;
  options.max_tasks = 200;
  options.arrival_rate = 3.0;
  LiveSimStream stream(net, options, 42);
  EXPECT_EQ(stream.NumQueues(), net.NumQueues());

  WindowLogBuilder builder(net.NumQueues());
  TaskRecord record;
  std::size_t count = 0;
  double last_entry = 0.0;
  while (stream.Next(record)) {
    EXPECT_GT(record.entry_time, last_entry);
    last_entry = record.entry_time;
    ASSERT_FALSE(record.visits.empty());
    EXPECT_EQ(record.visits.front().arrival, record.entry_time);
    builder.Add(record);
    ++count;
  }
  EXPECT_EQ(count, options.max_tasks);
  const auto [log, obs] = builder.Finish();
  std::string why;
  EXPECT_TRUE(log.IsFeasible(1e-9, &why)) << why;
  EXPECT_EQ(obs.observed_tasks.size(), static_cast<std::size_t>(log.NumTasks()));
}

TEST(LiveSimStream, DeterministicForAGivenSeed) {
  const QueueingNetwork net = MakeTandemNetwork(3.0, {6.0, 7.0});
  LiveSimOptions options;
  options.max_tasks = 80;
  options.arrival_rate = 3.0;
  options.observed_fraction = 0.5;
  LiveSimStream a(net, options, 9);
  LiveSimStream b(net, options, 9);
  TaskRecord ra;
  TaskRecord rb;
  while (a.Next(ra)) {
    ASSERT_TRUE(b.Next(rb));
    EXPECT_EQ(ra, rb);
  }
  EXPECT_FALSE(b.Next(rb));
}

TEST(LiveSimStream, HorizonBoundsTheStream) {
  const QueueingNetwork net = MakeSingleQueueNetwork(5.0, 20.0);
  LiveSimOptions options;
  options.horizon = 10.0;
  options.arrival_rate = 5.0;
  LiveSimStream stream(net, options, 13);
  TaskRecord record;
  std::size_t count = 0;
  while (stream.Next(record)) {
    EXPECT_LE(record.entry_time, options.horizon);
    ++count;
  }
  EXPECT_GT(count, 10u);  // ~50 expected
}

TEST(LiveSimStream, DrivesTheStreamingEstimator) {
  // End-to-end: live simulator -> assembler -> windowed StEM recovers the service rate.
  const QueueingNetwork net = MakeSingleQueueNetwork(4.0, 8.0);
  LiveSimOptions sim_options;
  sim_options.max_tasks = 600;
  sim_options.arrival_rate = 4.0;
  sim_options.observed_fraction = 0.5;
  LiveSimStream stream(net, sim_options, 11);

  StreamingEstimatorOptions options;
  options.window.window_duration = 30.0;
  options.stem.iterations = 40;
  options.stem.burn_in = 15;
  options.stem.wait_sweeps = 0;
  options.pipeline = true;
  StreamingEstimator estimator({1.0, 1.0}, 21, options);
  const auto estimates = estimator.Run(stream);
  ASSERT_GE(estimates.size(), 3u);
  for (const auto& window : estimates) {
    ASSERT_EQ(window.rates.size(), 2u);
    EXPECT_NEAR(1.0 / window.rates[1], 1.0 / 8.0, 0.08) << "window at " << window.t0;
  }
  EXPECT_EQ(estimator.Stats().tasks_ingested, sim_options.max_tasks);
}

TEST(LiveSimStream, FaultScheduleShowsUpInWindowEstimates) {
  // The queue slows 4x mid-stream; the streaming engine sees it live.
  const QueueingNetwork net = MakeSingleQueueNetwork(2.0, 10.0);
  FaultSchedule faults;
  faults.AddSlowdown(1, 150.0, 1.0e9, 4.0);
  LiveSimOptions sim_options;
  sim_options.max_tasks = 600;
  sim_options.arrival_rate = 2.0;
  sim_options.faults = &faults;
  sim_options.observed_fraction = 0.6;
  LiveSimStream stream(net, sim_options, 11);

  StreamingEstimatorOptions options;
  options.window.window_duration = 75.0;
  options.stem.iterations = 40;
  options.stem.burn_in = 15;
  options.stem.wait_sweeps = 0;
  StreamingEstimator estimator({1.0, 1.0}, 23, options);
  const auto estimates = estimator.Run(stream);
  ASSERT_GE(estimates.size(), 3u);
  const double early_service = 1.0 / estimates.front().rates[1];
  const double late_service = 1.0 / estimates.back().rates[1];
  EXPECT_NEAR(early_service, 0.1, 0.05);
  EXPECT_GT(late_service, 2.0 * early_service);
}

TEST(LiveSimStream, AllOnesArrivalScaleIsBitIdenticalToNoSchedule) {
  // The modulation contract: the gap after an arrival at t is drawn at rate
  // arrival_rate * ArrivalFactor(t). A factor of exactly 1.0 multiplies the rate by
  // 1.0, so every Exponential draw — and therefore every record — is the same bits as
  // the unmodulated stream. This is what makes arrival scaling safe to leave wired in.
  const QueueingNetwork net = MakeSingleQueueNetwork(4.0, 8.0);
  LiveSimOptions base;
  base.max_tasks = 300;
  base.arrival_rate = 4.0;
  LiveSimStream plain(net, base, 17);

  FaultSchedule faults;
  faults.AddArrivalScale(0.0, 1.0e9, 1.0);
  faults.AddArrivalScale(10.0, 20.0, 1.0);  // overlapping all-1.0 segments too
  LiveSimOptions modulated = base;
  modulated.faults = &faults;
  LiveSimStream scaled(net, modulated, 17);

  TaskRecord a;
  TaskRecord b;
  std::size_t count = 0;
  while (true) {
    const bool more_a = plain.Next(a);
    const bool more_b = scaled.Next(b);
    ASSERT_EQ(more_a, more_b);
    if (!more_a) {
      break;
    }
    ASSERT_EQ(a, b) << "record " << count;
    ++count;
  }
  EXPECT_EQ(count, base.max_tasks);
}

TEST(LiveSimStream, ArrivalScaleSegmentsModulateTheLoad) {
  // A 3x segment over the middle third of the horizon should land ~3x the tasks of a
  // plain third (piecewise-constant modulated Poisson, rate lagging one gap).
  const QueueingNetwork net = MakeSingleQueueNetwork(4.0, 40.0);
  FaultSchedule faults;
  faults.AddArrivalScale(100.0, 200.0, 3.0);
  LiveSimOptions options;
  options.horizon = 300.0;
  options.arrival_rate = 4.0;
  options.faults = &faults;
  LiveSimStream stream(net, options, 23);

  std::size_t early = 0;
  std::size_t middle = 0;
  std::size_t late = 0;
  TaskRecord record;
  while (stream.Next(record)) {
    if (record.entry_time < 100.0) {
      ++early;
    } else if (record.entry_time < 200.0) {
      ++middle;
    } else {
      ++late;
    }
  }
  EXPECT_NEAR(static_cast<double>(early), 400.0, 100.0);
  EXPECT_NEAR(static_cast<double>(late), 400.0, 100.0);
  EXPECT_NEAR(static_cast<double>(middle), 1200.0, 200.0);
  EXPECT_GT(middle, 2 * early);
  EXPECT_GT(middle, 2 * late);
}

}  // namespace
}  // namespace qnet
