// Metropolis-Hastings route resampling: link-surgery correctness, exact posterior on an
// enumerable two-server case, and composition with the time-resampling Gibbs sweeps.

#include "qnet/infer/route_mh.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "qnet/dist/exponential.h"
#include "qnet/infer/gibbs.h"
#include "qnet/infer/initializer.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/check.h"
#include "qnet/support/logspace.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

TEST(MoveEventToQueue, SpliceAndRestoreRoundTrips) {
  ThreeTierConfig config;
  config.tier_sizes = {2, 2};
  const QueueingNetwork net = MakeThreeTierNetwork(config);
  Rng rng(3);
  EventLog log = SimulateWorkload(net, PoissonArrivals(10.0, 60), rng);
  // Pick a tier-0 event and bounce it between the two tier-0 servers.
  EventId target = kNoEvent;
  for (EventId e = 0; static_cast<std::size_t>(e) < log.NumEvents(); ++e) {
    if (!log.At(e).initial && log.At(e).queue == 1) {
      target = e;
      break;
    }
  }
  ASSERT_NE(target, kNoEvent);
  const auto order1_before = log.QueueOrder(1);
  const auto order2_before = log.QueueOrder(2);
  log.MoveEventToQueue(target, 2);
  EXPECT_EQ(log.At(target).queue, 2);
  EXPECT_EQ(log.QueueOrder(1).size(), order1_before.size() - 1);
  EXPECT_EQ(log.QueueOrder(2).size(), order2_before.size() + 1);
  // Arrival order still sorted in both queues.
  for (int q : {1, 2}) {
    const auto& order = log.QueueOrder(q);
    for (std::size_t i = 1; i < order.size(); ++i) {
      EXPECT_LE(log.At(order[i - 1]).arrival, log.At(order[i]).arrival);
      EXPECT_EQ(log.At(order[i]).rho, order[i - 1]);
      EXPECT_EQ(log.At(order[i - 1]).nu, order[i]);
    }
  }
  // Moving back restores the original structure exactly.
  log.MoveEventToQueue(target, 1);
  EXPECT_EQ(log.QueueOrder(1), order1_before);
  EXPECT_EQ(log.QueueOrder(2), order2_before);
}

TEST(MoveEventToQueue, GuardsMisuse) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 4.0});
  Rng rng(5);
  EventLog log = SimulateWorkload(net, PoissonArrivals(2.0, 10), rng);
  EXPECT_THROW(log.MoveEventToQueue(log.TaskEvents(0)[0], 2), Error);  // initial event
  EXPECT_THROW(log.MoveEventToQueue(log.TaskEvents(0)[1], 0), Error);  // arrival queue
}

// Exact posterior check. One FSM state emits two servers uniformly; several tasks with
// pinned times; one target event's queue is resampled by MH with everything else frozen.
// The assignment posterior over {queue 1, queue 2} is computable by enumeration:
//     p(q) ∝ emission(q) * prod_affected exp-service-densities(q).
TEST(RouteMh, MatchesEnumeratedPosteriorOnTwoServers) {
  ThreeTierConfig config;
  config.tier_sizes = {2};
  config.arrival_rate = 1.0;
  config.service_rate = 4.0;
  QueueingNetwork net = MakeThreeTierNetwork(config);
  // Asymmetric service rates make the posterior non-trivial.
  net.SetService(1, std::make_unique<Exponential>(8.0));
  net.SetService(2, std::make_unique<Exponential>(1.5));
  const auto rates = net.ExponentialRates();

  Rng rng(7);
  EventLog log = SimulateWorkload(net, PoissonArrivals(1.0, 40), rng);
  // Target: some mid-log event currently on queue 1.
  EventId target = kNoEvent;
  for (EventId e = 20; static_cast<std::size_t>(e) < log.NumEvents(); ++e) {
    if (!log.At(e).initial && log.At(e).queue == 1) {
      target = e;
      break;
    }
  }
  ASSERT_NE(target, kNoEvent);

  // Enumerate: joint density (service terms + emission) for each assignment. Skip the
  // configuration if the alternative is FIFO-infeasible at fixed times.
  const auto joint_for = [&](int queue) {
    log.MoveEventToQueue(target, queue);
    double value = kNegInf;
    if (log.IsFeasible(1e-9)) {
      value = log.LogJointTimes(net) + log.LogJointRouting(net);
    }
    return value;
  };
  const int original_queue = 1;
  const double log_j1 = joint_for(1);
  const double log_j2 = joint_for(2);
  log.MoveEventToQueue(target, original_queue);
  if (log_j2 == kNegInf) {
    GTEST_SKIP() << "alternative assignment infeasible for this draw";
  }
  const double p2 = std::exp(log_j2 - LogAdd(log_j1, log_j2));

  // MH frequencies with all times frozen.
  const std::vector<EventId> targets = {target};
  std::size_t on_queue2 = 0;
  const int sweeps = 40000;
  for (int i = 0; i < sweeps; ++i) {
    RouteMhSweep(log, targets, net.GetFsm(), rates, rng);
    on_queue2 += log.At(target).queue == 2 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(on_queue2) / sweeps, p2, 0.02);
  std::string why;
  EXPECT_TRUE(log.IsFeasible(1e-9, &why)) << why;
}

TEST(RouteMh, ComposesWithTimeGibbsSweeps) {
  // Full pipeline with latent routes for unobserved tasks: interleave time sweeps and route
  // sweeps; all invariants must survive.
  ThreeTierConfig config;
  config.tier_sizes = {1, 3};
  const QueueingNetwork net = MakeThreeTierNetwork(config);
  const auto rates = net.ExponentialRates();
  Rng rng(11);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(10.0, 200), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.3;
  const Observation obs = scheme.Apply(truth, rng);

  // Latent routes: all events of unobserved tasks.
  std::vector<char> task_observed(static_cast<std::size_t>(truth.NumTasks()), 0);
  for (int task : obs.observed_tasks) {
    task_observed[static_cast<std::size_t>(task)] = 1;
  }
  std::vector<int> unobserved_tasks;
  for (int task = 0; task < truth.NumTasks(); ++task) {
    if (task_observed[static_cast<std::size_t>(task)] == 0) {
      unobserved_tasks.push_back(task);
    }
  }
  GibbsSampler sampler(InitializeFeasible(truth, obs, rates, rng), obs, rates);
  const std::vector<EventId> route_latents =
      RouteLatentEvents(sampler.State(), unobserved_tasks);
  ASSERT_FALSE(route_latents.empty());

  RouteMhStats stats;
  for (int round = 0; round < 12; ++round) {
    sampler.Sweep(rng);
    const RouteMhStats round_stats =
        RouteMhSweep(sampler.MutableState(), route_latents, net.GetFsm(), rates, rng);
    stats.proposed += round_stats.proposed;
    stats.accepted += round_stats.accepted;
    std::string why;
    ASSERT_TRUE(sampler.State().IsFeasible(1e-6, &why)) << "round " << round << ": " << why;
  }
  // Tier-0 has a single server: its events are skipped (no alternatives); tier-1 events
  // should see a healthy acceptance rate under symmetric rates.
  EXPECT_GT(stats.AcceptanceRate(), 0.1);
  // Observed times remain pinned.
  for (EventId e = 0; static_cast<std::size_t>(e) < truth.NumEvents(); ++e) {
    if (obs.ArrivalObserved(e)) {
      EXPECT_DOUBLE_EQ(sampler.State().Arrival(e), truth.Arrival(e));
    }
  }
}

TEST(RouteMh, SingleEmissionStatesAreSkipped) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 4.0});
  const auto rates = net.ExponentialRates();
  Rng rng(13);
  EventLog log = SimulateWorkload(net, PoissonArrivals(2.0, 20), rng);
  const EventId e = log.TaskEvents(0)[1];
  EXPECT_FALSE(ProposeQueueReassignment(log, e, net.GetFsm(), rates, rng));
  EXPECT_EQ(log.At(e).queue, 1);
}

}  // namespace
}  // namespace qnet
