// Tests for the feasible-state initializers (greedy and the paper's LP), parameterized over
// network shapes and observation fractions.

#include "qnet/infer/initializer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/check.h"
#include "qnet/support/math.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

struct InitCase {
  std::string name;
  int net_kind;  // 0: tandem, 1: three-tier, 2: feedback
  double fraction;
  InitMethod method;
  bool observe_final = false;
};

std::pair<EventLog, std::vector<double>> MakeProblem(int net_kind, int tasks,
                                                     std::uint64_t seed) {
  Rng rng(seed);
  switch (net_kind) {
    case 0: {
      const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
      return {SimulateWorkload(net, PoissonArrivals(2.0, static_cast<std::size_t>(tasks)), rng),
              net.ExponentialRates()};
    }
    case 1: {
      ThreeTierConfig config;
      config.tier_sizes = {1, 2, 4};
      const QueueingNetwork net = MakeThreeTierNetwork(config);
      return {
          SimulateWorkload(net, PoissonArrivals(10.0, static_cast<std::size_t>(tasks)), rng),
          net.ExponentialRates()};
    }
    default: {
      const QueueingNetwork net = MakeFeedbackNetwork(1.0, 4.0, 0.4);
      return {SimulateWorkload(net, PoissonArrivals(1.0, static_cast<std::size_t>(tasks)), rng),
              net.ExponentialRates()};
    }
  }
}

class InitializerTest : public ::testing::TestWithParam<InitCase> {};

TEST_P(InitializerTest, ProducesFeasibleStateRespectingObservations) {
  const InitCase& c = GetParam();
  const int tasks = c.method == InitMethod::kLp ? 30 : 150;  // keep LP instances small
  const auto [truth, rates] = MakeProblem(c.net_kind, tasks, 1000 + c.net_kind);
  TaskSamplingScheme scheme;
  scheme.fraction = c.fraction;
  scheme.observe_final_departure = c.observe_final;
  Rng rng(77);
  const Observation obs = scheme.Apply(truth, rng);

  InitializerOptions options;
  options.method = c.method;
  const EventLog state = InitializeFeasible(truth, obs, rates, rng, options);

  std::string why;
  EXPECT_TRUE(state.IsFeasible(1e-6, &why)) << why;
  // Observed times must be copied exactly.
  for (EventId e = 0; static_cast<std::size_t>(e) < truth.NumEvents(); ++e) {
    if (obs.ArrivalObserved(e)) {
      EXPECT_DOUBLE_EQ(state.Arrival(e), truth.Arrival(e)) << "event " << e;
    }
    if (obs.DepartureObserved(e)) {
      EXPECT_DOUBLE_EQ(state.Departure(e), truth.Departure(e)) << "event " << e;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, InitializerTest,
    ::testing::Values(
        InitCase{"tandem_greedy_10", 0, 0.1, InitMethod::kGreedy},
        InitCase{"tandem_greedy_50", 0, 0.5, InitMethod::kGreedy},
        InitCase{"tandem_greedy_none", 0, 0.0, InitMethod::kGreedy},
        InitCase{"tandem_greedy_final", 0, 0.3, InitMethod::kGreedy, true},
        InitCase{"tier_greedy_10", 1, 0.1, InitMethod::kGreedy},
        InitCase{"tier_greedy_25", 1, 0.25, InitMethod::kGreedy},
        InitCase{"feedback_greedy_20", 2, 0.2, InitMethod::kGreedy},
        InitCase{"tandem_lp_20", 0, 0.2, InitMethod::kLp},
        InitCase{"tier_lp_20", 1, 0.2, InitMethod::kLp},
        InitCase{"feedback_lp_30", 2, 0.3, InitMethod::kLp, true}),
    [](const ::testing::TestParamInfo<InitCase>& param_info) { return param_info.param.name; });

TEST(ConstraintTopo, OrderRespectsAllEdges) {
  const auto [truth, rates] = MakeProblem(1, 80, 5);
  (void)rates;
  const auto topo = ConstraintTopologicalOrder(truth);
  ASSERT_EQ(topo.size(), truth.NumEvents());
  std::vector<std::size_t> position(truth.NumEvents());
  for (std::size_t i = 0; i < topo.size(); ++i) {
    position[static_cast<std::size_t>(topo[i])] = i;
  }
  for (EventId e = 0; static_cast<std::size_t>(e) < truth.NumEvents(); ++e) {
    const Event& ev = truth.At(e);
    if (!ev.initial) {
      EXPECT_LT(position[static_cast<std::size_t>(ev.pi)],
                position[static_cast<std::size_t>(e)]);
    }
    if (ev.rho != kNoEvent) {
      EXPECT_LT(position[static_cast<std::size_t>(ev.rho)],
                position[static_cast<std::size_t>(e)]);
      const Event& rho = truth.At(ev.rho);
      if (!ev.initial && !rho.initial) {
        EXPECT_LE(position[static_cast<std::size_t>(rho.pi)],
                  position[static_cast<std::size_t>(ev.pi)]);
      }
    }
  }
}

TEST(Initializer, FullyObservedReproducesTruthExactly) {
  const auto [truth, rates] = MakeProblem(0, 60, 9);
  const Observation obs = Observation::FullyObserved(truth);
  Rng rng(11);
  const EventLog state = InitializeFeasible(truth, obs, rates, rng);
  for (EventId e = 0; static_cast<std::size_t>(e) < truth.NumEvents(); ++e) {
    EXPECT_DOUBLE_EQ(state.Arrival(e), truth.Arrival(e));
    EXPECT_DOUBLE_EQ(state.Departure(e), truth.Departure(e));
  }
}

TEST(Initializer, LpServiceTimesTrackTargetMeans) {
  // With nothing observed, the LP should be able to place every service close to its target
  // mean 1/mu (the objective the paper prescribes).
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
  Rng rng(21);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 25), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.0;
  const Observation obs = scheme.Apply(truth, rng);
  InitializerOptions options;
  options.method = InitMethod::kLp;
  const EventLog state = InitializeFeasible(truth, obs, net.ExponentialRates(), rng, options);
  RunningStat deviation;
  for (EventId e = 0; static_cast<std::size_t>(e) < state.NumEvents(); ++e) {
    const double target = 1.0 / net.ExponentialRates()[static_cast<std::size_t>(
                              state.At(e).queue)];
    deviation.Add(std::abs(state.ServiceTime(e) - target));
  }
  // Unconstrained events can hit their targets exactly; mean deviation should be small
  // relative to the mean service scale (~0.3).
  EXPECT_LT(deviation.Mean(), 0.1);
}

TEST(Initializer, GreedyHandlesInterleavedObservations) {
  // A task with observed first and third visits but unobserved second: the second visit is
  // pinned between two observed times through both its queue and its task.
  const QueueingNetwork net = MakeTandemNetwork(2.0, {5.0, 5.0, 5.0});
  Rng rng(31);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 50), rng);
  // Hand-build an observation: every task observes visits 1 and 3 but not 2.
  Observation obs;
  obs.arrival_observed.assign(truth.NumEvents(), 0);
  obs.departure_observed.assign(truth.NumEvents(), 0);
  for (int k = 0; k < truth.NumTasks(); ++k) {
    const auto& chain = truth.TaskEvents(k);
    obs.arrival_observed[static_cast<std::size_t>(chain[0])] = 1;  // initial
    obs.arrival_observed[static_cast<std::size_t>(chain[1])] = 1;
    obs.arrival_observed[static_cast<std::size_t>(chain[3])] = 1;
  }
  for (EventId e = 0; static_cast<std::size_t>(e) < truth.NumEvents(); ++e) {
    const Event& ev = truth.At(e);
    if (!ev.initial) {
      obs.departure_observed[static_cast<std::size_t>(ev.pi)] =
          obs.arrival_observed[static_cast<std::size_t>(e)];
    }
  }
  obs.Validate(truth);
  const EventLog state = InitializeFeasible(truth, obs, net.ExponentialRates(), rng);
  std::string why;
  EXPECT_TRUE(state.IsFeasible(1e-6, &why)) << why;
  // The unobserved second visit must sit between the observed neighbors.
  for (int k = 0; k < truth.NumTasks(); ++k) {
    const auto& chain = truth.TaskEvents(k);
    EXPECT_GE(state.Arrival(chain[2]), state.Arrival(chain[1]) - 1e-9);
    EXPECT_LE(state.Departure(chain[2]), truth.Arrival(chain[3]) + 1e-9);
  }
}

}  // namespace
}  // namespace qnet
