// Online (sliding-window) StEM: window extraction correctness and rate tracking across a
// workload/service change.

#include "qnet/infer/online.h"

#include <cmath>

#include <gtest/gtest.h>

#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/fault.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/check.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

TEST(ExtractTaskWindow, PreservesTimesLinksAndFlags) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
  Rng rng(3);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 60), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.4;
  const Observation obs = scheme.Apply(truth, rng);

  const std::vector<int> tasks = {10, 11, 12, 13, 14, 20, 21};
  const auto [window, window_obs] = ExtractTaskWindow(truth, obs, tasks);
  EXPECT_EQ(window.NumTasks(), 7);
  std::string why;
  EXPECT_TRUE(window.IsFeasible(1e-9, &why)) << why;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const int wk = static_cast<int>(i);
    EXPECT_DOUBLE_EQ(window.TaskEntryTime(wk), truth.TaskEntryTime(tasks[i]));
    EXPECT_DOUBLE_EQ(window.TaskExitTime(wk), truth.TaskExitTime(tasks[i]));
    // Arrival observation flags carried over per event.
    const auto& old_chain = truth.TaskEvents(tasks[i]);
    const auto& new_chain = window.TaskEvents(wk);
    ASSERT_EQ(old_chain.size(), new_chain.size());
    for (std::size_t j = 1; j < old_chain.size(); ++j) {
      EXPECT_EQ(window_obs.ArrivalObserved(new_chain[j]), obs.ArrivalObserved(old_chain[j]));
    }
  }
  window_obs.Validate(window);
}

TEST(ExtractTaskWindow, SingleTaskWindow) {
  // Boundary invariant: a one-task window is a valid log — initial event anchored at 0,
  // links rebuilt, observation consistent.
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
  Rng rng(17);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 30), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.5;
  const Observation obs = scheme.Apply(truth, rng);

  const auto [window, window_obs] = ExtractTaskWindow(truth, obs, {12});
  ASSERT_EQ(window.NumTasks(), 1);
  std::string why;
  EXPECT_TRUE(window.IsFeasible(1e-9, &why)) << why;
  EXPECT_DOUBLE_EQ(window.TaskEntryTime(0), truth.TaskEntryTime(12));
  EXPECT_DOUBLE_EQ(window.TaskExitTime(0), truth.TaskExitTime(12));
  const auto& chain = window.TaskEvents(0);
  ASSERT_EQ(chain.size(), truth.TaskEvents(12).size());
  // With every cross-task neighbor cut away, each event's rho/nu links stay within the
  // task's own queue visits (no dangling ids).
  for (const EventId e : chain) {
    const Event& ev = window.At(e);
    if (ev.rho != kNoEvent) {
      EXPECT_EQ(window.At(ev.rho).task, 0);
    }
    if (ev.nu != kNoEvent) {
      EXPECT_EQ(window.At(ev.nu).task, 0);
    }
  }
  window_obs.Validate(window);
}

TEST(ExtractTaskWindow, RederivesDepartureFlagsAndKeepsFinalOnes) {
  // Departure flags are the same physical measurement as the successor's arrival, so the
  // window re-derives every internal departure flag from its successor arrival flag; only
  // each task's *final* departure flag (nobody's arrival) carries over from the source.
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
  Rng rng(19);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 40), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.5;
  scheme.observe_final_departure = false;  // exercises the unobserved-final-exit corner
  const Observation obs = scheme.Apply(truth, rng);

  const std::vector<int> tasks = {5, 6, 7, 20, 21};
  const auto [window, window_obs] = ExtractTaskWindow(truth, obs, tasks);
  for (int wk = 0; wk < window.NumTasks(); ++wk) {
    const auto& chain = window.TaskEvents(wk);
    for (std::size_t i = 1; i < chain.size(); ++i) {
      const Event& ev = window.At(chain[i]);
      EXPECT_EQ(window_obs.DepartureObserved(ev.pi), window_obs.ArrivalObserved(chain[i]))
          << "task " << wk << " step " << i;
    }
    // Final departure: carried from the source, here never observed.
    EXPECT_EQ(window_obs.DepartureObserved(chain.back()),
              obs.DepartureObserved(truth.TaskEvents(tasks[static_cast<std::size_t>(wk)]).back()));
    EXPECT_FALSE(window_obs.DepartureObserved(chain.back()));
  }
  window_obs.Validate(window);
}

TEST(ExtractTaskWindow, ReconstructsObservedTasks) {
  // observed_tasks must be exactly the window-renumbered source observed tasks that made
  // it into the window, in sorted order.
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
  Rng rng(23);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 50), rng);
  TaskSamplingScheme scheme;
  const Observation obs = scheme.ApplyToTasks(truth, {2, 3, 9, 30, 31});

  const std::vector<int> tasks = {3, 4, 9, 10, 30};
  const auto [window, window_obs] = ExtractTaskWindow(truth, obs, tasks);
  // Source observed tasks inside the window: 3 -> 0, 9 -> 2, 30 -> 4.
  const std::vector<int> expected = {0, 2, 4};
  EXPECT_EQ(window_obs.observed_tasks, expected);
  for (const int wk : window_obs.observed_tasks) {
    const auto& chain = window.TaskEvents(wk);
    for (std::size_t i = 1; i < chain.size(); ++i) {
      EXPECT_TRUE(window_obs.ArrivalObserved(chain[i]));
    }
  }
}

TEST(ExtractTaskWindow, RejectsUnsortedTasks) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0});
  Rng rng(5);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 10), rng);
  const Observation obs = Observation::FullyObserved(truth);
  EXPECT_THROW(ExtractTaskWindow(truth, obs, {3, 1}), Error);
  EXPECT_THROW(ExtractTaskWindow(truth, obs, {}), Error);
}

TEST(OnlineStem, ProducesPerWindowEstimates) {
  const QueueingNetwork net = MakeSingleQueueNetwork(4.0, 8.0);
  Rng rng(7);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(4.0, 600), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.5;
  const Observation obs = scheme.Apply(truth, rng);

  OnlineStemOptions options;
  options.window_duration = 30.0;
  options.stem.iterations = 40;
  options.stem.burn_in = 15;
  options.stem.wait_sweeps = 0;
  const auto estimates = RunOnlineStem(truth, obs, {1.0, 1.0}, rng, options);
  ASSERT_GE(estimates.size(), 3u);
  for (const auto& window : estimates) {
    EXPECT_GT(window.tasks, 0u);
    ASSERT_EQ(window.rates.size(), 2u);
    EXPECT_NEAR(1.0 / window.rates[1], 1.0 / 8.0, 0.08) << "window at " << window.t0;
  }
}

TEST(OnlineStem, ShardedWindowSweepsAreDeterministicAndAccurate) {
  // Streaming windows ride the same MoveKernel/sweep-driver core as batch StEM, so
  // flipping on sharded sweeps must keep estimates deterministic (thread count cannot
  // change them) and as accurate as the sequential scan.
  const QueueingNetwork net = MakeSingleQueueNetwork(4.0, 8.0);
  Rng rng(7);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(4.0, 400), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.5;
  const Observation obs = scheme.Apply(truth, rng);

  OnlineStemOptions options;
  options.window_duration = 30.0;
  options.stem.iterations = 40;
  options.stem.burn_in = 15;
  options.stem.wait_sweeps = 0;
  options.stem.sharded_sweeps = true;
  options.stem.sharded.shards = 2;

  options.stem.sharded.threads = 1;
  Rng rng_a(21);
  const auto serial = RunOnlineStem(truth, obs, {1.0, 1.0}, rng_a, options);
  options.stem.sharded.threads = 2;
  Rng rng_b(21);
  const auto parallel = RunOnlineStem(truth, obs, {1.0, 1.0}, rng_b, options);

  ASSERT_GE(serial.size(), 3u);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t w = 0; w < serial.size(); ++w) {
    ASSERT_EQ(serial[w].rates.size(), parallel[w].rates.size());
    for (std::size_t q = 0; q < serial[w].rates.size(); ++q) {
      EXPECT_EQ(serial[w].rates[q], parallel[w].rates[q]) << "window " << w << " q=" << q;
    }
    EXPECT_NEAR(1.0 / serial[w].rates[1], 1.0 / 8.0, 0.08) << "window at " << serial[w].t0;
  }
}

TEST(OnlineStem, TracksMidStreamServiceDegradation) {
  // The queue slows down 4x halfway through; window estimates should reflect it.
  const QueueingNetwork net = MakeSingleQueueNetwork(2.0, 10.0);
  FaultSchedule faults;
  faults.AddSlowdown(1, 150.0, 1.0e9, 4.0);
  SimOptions sim_options;
  sim_options.faults = &faults;
  Rng rng(11);
  const EventLog truth =
      Simulate(net, PoissonArrivals(2.0, 600).Generate(rng), rng, sim_options);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.6;
  const Observation obs = scheme.Apply(truth, rng);

  OnlineStemOptions options;
  options.window_duration = 75.0;
  options.stem.iterations = 40;
  options.stem.burn_in = 15;
  options.stem.wait_sweeps = 0;
  const auto estimates = RunOnlineStem(truth, obs, {1.0, 1.0}, rng, options);
  ASSERT_GE(estimates.size(), 3u);
  const auto& first = estimates.front();
  const auto& last = estimates.back();
  const double early_service = 1.0 / first.rates[1];
  const double late_service = 1.0 / last.rates[1];
  EXPECT_NEAR(early_service, 0.1, 0.05);
  EXPECT_GT(late_service, 2.0 * early_service);
}

}  // namespace
}  // namespace qnet
