// Model selection: MLE fits recover generating parameters; BIC picks the generating family
// when families are clearly separated.

#include "qnet/infer/model_select.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "qnet/dist/exponential.h"
#include "qnet/dist/gamma.h"
#include "qnet/dist/lognormal.h"
#include "qnet/support/check.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

std::vector<double> Draw(const ServiceDistribution& dist, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(dist.Sample(rng));
  }
  return xs;
}

TEST(FitMle, ExponentialRecoversRate) {
  const auto xs = Draw(Exponential(3.0), 20000, 3);
  const auto fit = FitMle(ServiceFamily::kExponential, xs);
  EXPECT_NEAR(fit->Mean(), 1.0 / 3.0, 0.01);
}

TEST(FitMle, GammaRecoversShapeAndRate) {
  const GammaDist truth(3.5, 2.0);
  const auto xs = Draw(truth, 40000, 5);
  const auto fit = FitMle(ServiceFamily::kGamma, xs);
  const auto* gamma = dynamic_cast<const GammaDist*>(fit.get());
  ASSERT_NE(gamma, nullptr);
  EXPECT_NEAR(gamma->shape(), 3.5, 0.15);
  EXPECT_NEAR(gamma->rate(), 2.0, 0.1);
}

TEST(FitMle, LogNormalRecoversParameters) {
  const LogNormal truth(-0.5, 0.7);
  const auto xs = Draw(truth, 40000, 7);
  const auto fit = FitMle(ServiceFamily::kLogNormal, xs);
  const auto* ln = dynamic_cast<const LogNormal*>(fit.get());
  ASSERT_NE(ln, nullptr);
  EXPECT_NEAR(ln->mu(), -0.5, 0.02);
  EXPECT_NEAR(ln->sigma(), 0.7, 0.02);
}

TEST(FitMle, NearDeterministicSampleFallsBackGracefully) {
  std::vector<double> xs(100, 0.25);
  xs[0] = 0.2500001;
  const auto fit = FitMle(ServiceFamily::kGamma, xs);
  EXPECT_NEAR(fit->Mean(), 0.25, 0.01);
  EXPECT_THROW(FitMle(ServiceFamily::kGamma, std::vector<double>{1.0}), Error);
}

TEST(ScoreFamilies, SortedByBicAndSelectsGenerator) {
  // Strongly log-normal data (high SCV) vs exponential.
  const LogNormal truth(0.0, 1.5);
  const auto xs = Draw(truth, 5000, 9);
  const auto scores = ScoreFamilies(xs);
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_LE(scores[0].bic, scores[1].bic);
  EXPECT_LE(scores[1].bic, scores[2].bic);
  EXPECT_EQ(scores[0].family, ServiceFamily::kLogNormal);
  EXPECT_EQ(SelectServiceFamily(xs), ServiceFamily::kLogNormal);
}

TEST(ScoreFamilies, ExponentialDataPrefersExponentialByParsimony) {
  const auto xs = Draw(Exponential(2.0), 5000, 11);
  // Gamma/log-normal can only match the exponential's likelihood; BIC then charges them the
  // extra parameter. Exponential must win (gamma could tie within noise, so check top-2).
  const auto scores = ScoreFamilies(xs);
  EXPECT_TRUE(scores[0].family == ServiceFamily::kExponential ||
              scores[1].family == ServiceFamily::kExponential);
  EXPECT_EQ(SelectServiceFamily(xs),
            scores[0].family);  // consistency between the two APIs
}

TEST(ScoreFamilies, GammaShapeTwoDataSelectsGamma) {
  const GammaDist truth(2.0, 4.0);
  const auto xs = Draw(truth, 8000, 13);
  const auto best = SelectServiceFamily(xs);
  // Gamma(2) is far from exponential (SCV 0.5) and from log-normal's right tail.
  EXPECT_EQ(best, ServiceFamily::kGamma);
}

TEST(FamilyName, AllNamed) {
  EXPECT_EQ(FamilyName(ServiceFamily::kExponential), "exponential");
  EXPECT_EQ(FamilyName(ServiceFamily::kGamma), "gamma");
  EXPECT_EQ(FamilyName(ServiceFamily::kLogNormal), "lognormal");
}

}  // namespace
}  // namespace qnet
