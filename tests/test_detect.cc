// Online change detection: CUSUM/BOCPD unit behavior on synthetic sequences, the
// ChangeMonitor's merged-tail purity and alert plumbing, campaign-driven end-to-end
// detection (latency within budget, zero false alarms on the quiet prefix), and the
// alert bit-equality grid across sweep threads x pipelining x lane counts at fixed K.

#include <cstdint>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "qnet/detect/alerts.h"
#include "qnet/detect/bocpd.h"
#include "qnet/detect/change_monitor.h"
#include "qnet/detect/cusum.h"
#include "qnet/scenario/campaign.h"
#include "qnet/shard/sharded_streaming.h"
#include "qnet/stream/live_stream.h"
#include "qnet/stream/streaming_estimator.h"
#include "qnet/support/rng.h"
#include "qnet/trace/window_csv.h"

namespace qnet {
namespace {

// Level `mean` with deterministic +/-2% noise (seeded Rng) — the synthetic stand-in
// for a stationary estimate signal.
double Noisy(double mean, Rng& rng) { return mean * (0.98 + 0.04 * rng.Uniform()); }

// --- CUSUM -------------------------------------------------------------------------------

TEST(Cusum, QuietSequenceNeverAlerts) {
  CusumDetector detector;
  Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    EXPECT_FALSE(detector.Observe(Noisy(10.0, rng)).alert) << "window " << i;
  }
  EXPECT_TRUE(detector.Armed());
}

TEST(Cusum, DetectsUpwardStepWithinAFewWindows) {
  CusumDetector detector;
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    ASSERT_FALSE(detector.Observe(Noisy(10.0, rng)).alert);
  }
  int latency = -1;
  CusumDetector::Result hit;
  for (int i = 0; i < 10; ++i) {
    hit = detector.Observe(Noisy(14.0, rng));
    if (hit.alert) {
      latency = i;
      break;
    }
  }
  ASSERT_GE(latency, 0) << "40% upward step never detected";
  EXPECT_LE(latency, 3);
  EXPECT_GT(hit.magnitude, 0.2);   // (x - mu0) / mu0 ~ +0.4
  EXPECT_GT(hit.statistic, 0.0);   // upward shift wins on S+
}

TEST(Cusum, DetectsDownwardStepWithSignedStatistic) {
  CusumDetector detector;
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    ASSERT_FALSE(detector.Observe(Noisy(10.0, rng)).alert);
  }
  int latency = -1;
  CusumDetector::Result hit;
  for (int i = 0; i < 10; ++i) {
    hit = detector.Observe(Noisy(6.5, rng));
    if (hit.alert) {
      latency = i;
      break;
    }
  }
  ASSERT_GE(latency, 0);
  EXPECT_LE(latency, 3);
  EXPECT_LT(hit.magnitude, -0.2);
  EXPECT_LT(hit.statistic, 0.0);  // downward shift wins on S-
}

TEST(Cusum, RebaselinesAfterAlertAndCatchesTheRecovery) {
  CusumDetector detector;
  Rng rng(11);
  for (int i = 0; i < 12; ++i) {
    ASSERT_FALSE(detector.Observe(Noisy(10.0, rng)).alert);
  }
  // Shift up; one alert, then quiet at the new level (the detector re-baselines).
  int alerts = 0;
  for (int i = 0; i < 30; ++i) {
    if (detector.Observe(Noisy(14.0, rng)).alert) {
      ++alerts;
    }
  }
  EXPECT_EQ(alerts, 1);
  // Recovery back to the original level is a fresh (downward) shift.
  int recovery_alerts = 0;
  for (int i = 0; i < 30; ++i) {
    const CusumDetector::Result r = detector.Observe(Noisy(10.0, rng));
    if (r.alert) {
      ++recovery_alerts;
      EXPECT_LT(r.magnitude, 0.0);
    }
  }
  EXPECT_EQ(recovery_alerts, 1);
}

TEST(Cusum, GradualRampStillTrips) {
  // A slow drift (1% of the level per window) accumulates in the sums even though no
  // single window is anomalous.
  CusumDetector detector;
  Rng rng(13);
  for (int i = 0; i < 12; ++i) {
    ASSERT_FALSE(detector.Observe(Noisy(10.0, rng)).alert);
  }
  bool detected = false;
  double level = 10.0;
  for (int i = 0; i < 60 && !detected; ++i) {
    level *= 1.01;
    detected = detector.Observe(Noisy(level, rng)).alert;
  }
  EXPECT_TRUE(detected);
}

// --- BOCPD -------------------------------------------------------------------------------

TEST(Bocpd, QuietSequenceNeverAlerts) {
  BocpdDetector detector;
  Rng rng(17);
  for (int i = 0; i < 400; ++i) {
    EXPECT_FALSE(detector.Observe(Noisy(10.0, rng)).alert) << "window " << i;
  }
  EXPECT_TRUE(detector.Armed());
  EXPECT_LT(detector.CollapseMass(), 0.5);
}

TEST(Bocpd, DetectsStepViaRunLengthCollapse) {
  BocpdDetector detector;
  Rng rng(19);
  for (int i = 0; i < 30; ++i) {
    ASSERT_FALSE(detector.Observe(Noisy(10.0, rng)).alert) << "window " << i;
  }
  int latency = -1;
  BocpdDetector::Result hit;
  for (int i = 0; i < 10; ++i) {
    hit = detector.Observe(Noisy(14.0, rng));
    if (hit.alert) {
      latency = i;
      break;
    }
  }
  ASSERT_GE(latency, 0) << "40% step never collapsed the run-length posterior";
  EXPECT_LE(latency, 4);
  EXPECT_GT(hit.statistic, 0.7);  // the collapse mass that fired
  EXPECT_GT(hit.magnitude, 0.2);
}

TEST(Bocpd, ReAdaptsAndDetectsASecondChange) {
  // No reset-on-alert: the filter re-adapts to the post-change level by itself, so a
  // later recovery is a fresh collapse.
  BocpdOptions options;
  BocpdDetector detector(options);
  Rng rng(23);
  for (int i = 0; i < 30; ++i) {
    ASSERT_FALSE(detector.Observe(Noisy(10.0, rng)).alert);
  }
  int first = 0;
  for (int i = 0; i < 40; ++i) {
    if (detector.Observe(Noisy(15.0, rng)).alert) {
      ++first;
    }
  }
  EXPECT_GE(first, 1);
  int second = 0;
  for (int i = 0; i < 40; ++i) {
    if (detector.Observe(Noisy(10.0, rng)).alert) {
      ++second;
    }
  }
  EXPECT_GE(second, 1);
}

// --- AlertSink ---------------------------------------------------------------------------

TEST(AlertSink, CountsByKindAndTruncates) {
  AlertSink sink(4);
  Alert a;
  a.kind = AlertKind::kRateShift;
  sink.Raise(a);
  a.kind = AlertKind::kServiceDrift;
  sink.Raise(a);
  a.kind = AlertKind::kServiceDrift;
  sink.Raise(a);
  EXPECT_EQ(sink.Count(), 3u);
  EXPECT_EQ(sink.CountOfKind(AlertKind::kRateShift), 1u);
  EXPECT_EQ(sink.CountOfKind(AlertKind::kServiceDrift), 2u);
  sink.TruncateTo(1);
  EXPECT_EQ(sink.Count(), 1u);
  EXPECT_EQ(sink.CountOfKind(AlertKind::kServiceDrift), 0u);
  EXPECT_EQ(sink.CountOfKind(AlertKind::kRateShift), 1u);
}

TEST(AlertSink, CsvCarriesNamesAndProvenance) {
  AlertSink sink;
  Alert a;
  a.kind = AlertKind::kBottleneckMigration;
  a.detector = DetectorKind::kBottleneckTracker;
  a.window = 12;
  a.t0 = 240.0;
  a.t1 = 260.0;
  a.queue = 2;
  a.magnitude = 1.5;
  a.statistic = 3.0;
  sink.Raise(a);
  std::ostringstream os;
  WriteAlertsCsv(os, sink.alerts());
  const std::string csv = os.str();
  EXPECT_NE(csv.find("# alerts=1"), std::string::npos);
  EXPECT_NE(csv.find("window,kind,detector,queue,t0,t1,magnitude,statistic"),
            std::string::npos);
  EXPECT_NE(csv.find("12,bottleneck_migration,bottleneck_tracker,2,240,260,1.5,3"),
            std::string::npos);
}

// --- ChangeMonitor -----------------------------------------------------------------------

// Synthetic estimate: lambda + per-queue service rates, 20 s window at index w.
WindowEstimate MakeEstimate(std::size_t w, double lambda, std::vector<double> mu) {
  WindowEstimate e;
  e.t0 = 20.0 * static_cast<double>(w);
  e.t1 = e.t0 + 20.0;
  e.tasks = 80;
  e.window_local_arrival_rate = true;
  e.rates.push_back(lambda);
  for (const double m : mu) {
    e.rates.push_back(m);
  }
  return e;
}

TEST(ChangeMonitor, FlagsARateShiftAndAppliesMasks) {
  ChangeMonitor monitor(3);
  Rng rng(29);
  std::vector<WindowEstimate> estimates;
  for (std::size_t w = 0; w < 12; ++w) {
    estimates.push_back(
        MakeEstimate(w, Noisy(4.0, rng), {Noisy(10.0, rng), Noisy(8.0, rng)}));
  }
  for (std::size_t w = 12; w < 18; ++w) {
    estimates.push_back(
        MakeEstimate(w, Noisy(8.0, rng), {Noisy(10.0, rng), Noisy(8.0, rng)}));
  }
  for (const WindowEstimate& e : estimates) {
    monitor.Observe(e);
  }
  ASSERT_EQ(monitor.WindowsObserved(), estimates.size());
  ASSERT_GE(monitor.Alerts().size(), 1u);
  const Alert& first = monitor.Alerts().front();
  EXPECT_EQ(first.kind, AlertKind::kRateShift);
  EXPECT_GE(first.window, 12u);
  EXPECT_LE(first.window, 14u);
  EXPECT_EQ(first.queue, 0);
  EXPECT_EQ(first.t0, estimates[first.window].t0);

  monitor.ApplyAlertFlags(estimates);
  EXPECT_NE(estimates[first.window].alerts & AlertBit(AlertKind::kRateShift), 0u);
  for (std::size_t w = 0; w < 12; ++w) {
    EXPECT_EQ(estimates[w].alerts, 0u) << "window " << w;
  }
}

TEST(ChangeMonitor, ServiceDriftCarriesTheQueueIndex) {
  ChangeMonitor monitor(3);
  Rng rng(31);
  for (std::size_t w = 0; w < 12; ++w) {
    monitor.Observe(
        MakeEstimate(w, Noisy(4.0, rng), {Noisy(10.0, rng), Noisy(8.0, rng)}));
  }
  // Queue 1 slows 3x; queue 2 and lambda stay put.
  for (std::size_t w = 12; w < 18; ++w) {
    monitor.Observe(
        MakeEstimate(w, Noisy(4.0, rng), {Noisy(10.0 / 3.0, rng), Noisy(8.0, rng)}));
  }
  ASSERT_GE(monitor.Alerts().size(), 1u);
  bool saw_service_drift = false;
  for (const Alert& alert : monitor.Alerts()) {
    if (alert.kind == AlertKind::kServiceDrift) {
      saw_service_drift = true;
      EXPECT_EQ(alert.queue, 1);
      EXPECT_LT(alert.magnitude, 0.0);  // the rate dropped
    }
  }
  EXPECT_TRUE(saw_service_drift);
}

TEST(ChangeMonitor, BottleneckMigrationNeedsMarginAndHold) {
  ChangeMonitorOptions options;
  options.bottleneck_hold_windows = 3;
  ChangeMonitor monitor(3, options);
  Rng rng(37);
  // rho = {0.4, 0.5}: queue 2 is the incumbent bottleneck.
  std::size_t w = 0;
  for (; w < 12; ++w) {
    monitor.Observe(
        MakeEstimate(w, Noisy(4.0, rng), {Noisy(10.0, rng), Noisy(8.0, rng)}));
  }
  EXPECT_EQ(monitor.CurrentBottleneck(), 2);
  EXPECT_EQ(monitor.Sink().CountOfKind(AlertKind::kBottleneckMigration), 0u);
  // Queue 1 slows 2x: rho_1 = 0.8 > 1.1 * rho_2. The migration alert must wait for the
  // hold streak (3 consecutive windows), then fire exactly once.
  std::size_t migration_alerts_after[6];
  for (std::size_t i = 0; i < 6; ++i, ++w) {
    monitor.Observe(
        MakeEstimate(w, Noisy(4.0, rng), {Noisy(5.0, rng), Noisy(8.0, rng)}));
    migration_alerts_after[i] = monitor.Sink().CountOfKind(AlertKind::kBottleneckMigration);
  }
  EXPECT_EQ(migration_alerts_after[0], 0u);
  EXPECT_EQ(migration_alerts_after[1], 0u);
  EXPECT_EQ(migration_alerts_after[2], 1u);
  EXPECT_EQ(migration_alerts_after[5], 1u);
  EXPECT_EQ(monitor.CurrentBottleneck(), 1);
  bool found = false;
  for (const Alert& alert : monitor.Alerts()) {
    if (alert.kind == AlertKind::kBottleneckMigration) {
      found = true;
      EXPECT_EQ(alert.queue, 1);
      EXPECT_GT(alert.magnitude, 1.1);
      EXPECT_EQ(alert.statistic, 3.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ChangeMonitor, DegradedFlagIsEdgeTriggered) {
  ChangeMonitor monitor(3);
  Rng rng(41);
  for (std::size_t w = 0; w < 10; ++w) {
    WindowEstimate e =
        MakeEstimate(w, Noisy(4.0, rng), {Noisy(10.0, rng), Noisy(8.0, rng)});
    e.degraded = w >= 3 && w <= 5;  // one degraded episode
    monitor.Observe(e);
  }
  EXPECT_EQ(monitor.Sink().CountOfKind(AlertKind::kDegradedRun), 1u);
  EXPECT_EQ(monitor.Alerts().front().kind, AlertKind::kDegradedRun);
  EXPECT_EQ(monitor.Alerts().front().window, 3u);
}

TEST(ChangeMonitor, MergedTailReplacementIsAPureFunctionOfTheFinalSequence) {
  // Monitor A sees [e0..e16, X, X'] where X' is a merged-tail re-fit REPLACING X with
  // different values; monitor B sees [e0..e16, Y] where Y carries X''s values but as a
  // plain emission. The final alert logs and masks must be identical — the rewind
  // erases every trace of X.
  Rng rng(43);
  std::vector<WindowEstimate> prefix;
  for (std::size_t w = 0; w < 17; ++w) {
    prefix.push_back(
        MakeEstimate(w, Noisy(4.0, rng), {Noisy(10.0, rng), Noisy(8.0, rng)}));
  }
  // X: a wild spike that WOULD alert; X': the tail re-fit walks it back to quiet.
  WindowEstimate spike = MakeEstimate(17, 9.0, {10.0, 8.0});
  WindowEstimate refit = MakeEstimate(17, 4.01, {10.0, 8.0});
  refit.merged_tail_tasks = 30;
  WindowEstimate plain = refit;
  plain.merged_tail_tasks = 0;

  ChangeMonitor with_tail(3);
  for (const WindowEstimate& e : prefix) {
    with_tail.Observe(e);
  }
  with_tail.Observe(spike);
  EXPECT_GE(with_tail.Alerts().size(), 1u);  // the spike alerted...
  with_tail.Observe(refit);                  // ...and the re-fit must erase it

  ChangeMonitor without_tail(3);
  for (const WindowEstimate& e : prefix) {
    without_tail.Observe(e);
  }
  without_tail.Observe(plain);

  EXPECT_EQ(with_tail.WindowsObserved(), without_tail.WindowsObserved());
  ASSERT_EQ(with_tail.Alerts().size(), without_tail.Alerts().size());
  for (std::size_t i = 0; i < with_tail.Alerts().size(); ++i) {
    const Alert& a = with_tail.Alerts()[i];
    const Alert& b = without_tail.Alerts()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.window, b.window);
    EXPECT_EQ(a.magnitude, b.magnitude);
    EXPECT_EQ(a.statistic, b.statistic);
  }
  EXPECT_EQ(with_tail.AlertMasks(), without_tail.AlertMasks());
}

TEST(ChangeMonitor, AlertFlagsSurviveTheWindowCsvRoundTrip) {
  ChangeMonitor monitor(3);
  Rng rng(47);
  std::vector<WindowEstimate> estimates;
  for (std::size_t w = 0; w < 12; ++w) {
    estimates.push_back(
        MakeEstimate(w, Noisy(4.0, rng), {Noisy(10.0, rng), Noisy(8.0, rng)}));
  }
  for (std::size_t w = 12; w < 17; ++w) {
    estimates.push_back(
        MakeEstimate(w, Noisy(7.0, rng), {Noisy(10.0, rng), Noisy(8.0, rng)}));
  }
  for (const WindowEstimate& e : estimates) {
    monitor.Observe(e);
  }
  monitor.ApplyAlertFlags(estimates);
  ASSERT_GE(monitor.Alerts().size(), 1u);

  std::stringstream ss;
  WriteWindowEstimates(ss, estimates, 3);
  const std::vector<WindowEstimate> reread = ReadWindowEstimates(ss);
  ASSERT_EQ(reread.size(), estimates.size());
  for (std::size_t w = 0; w < estimates.size(); ++w) {
    EXPECT_EQ(reread[w].alerts, estimates[w].alerts) << "window " << w;
  }
}

// --- Campaigns: end-to-end detection ------------------------------------------------------

TEST(Campaign, CatalogIsCompleteAndSelfConsistent) {
  const std::vector<std::string> names = CampaignNames();
  ASSERT_EQ(names.size(), 6u);
  for (const std::string& name : names) {
    const Campaign c = MakeCampaign(name);
    EXPECT_EQ(c.name, name);
    EXPECT_EQ(c.NumQueues(), 3);
    EXPECT_GT(c.horizon, 0.0);
    EXPECT_LE(c.quiet_until, c.horizon);
    for (const CampaignEvent& event : c.events) {
      EXPECT_GE(event.time, c.quiet_until) << name;
      EXPECT_LT(event.time, c.horizon + 1.0) << name;
    }
    if (name == "stationary") {
      EXPECT_TRUE(c.events.empty());
      EXPECT_TRUE(c.faults.Empty());
    } else {
      EXPECT_FALSE(c.events.empty());
      EXPECT_FALSE(c.faults.Empty());
    }
  }
}

TEST(Campaign, StationaryCampaignRaisesNoWorkloadAlerts) {
  const Campaign c = MakeCampaign("stationary");
  const CampaignResult result = RunCampaign(c, CampaignRunOptions());
  EXPECT_EQ(result.false_alarms, 0u);
  for (const Alert& alert : result.alerts) {
    // Under kMeanFieldOnly one degraded-edge alert at window 0 is expected; nothing
    // else may fire on a stationary stream.
    EXPECT_EQ(alert.kind, AlertKind::kDegradedRun)
        << AlertKindName(alert.kind) << " via " << DetectorKindName(alert.detector)
        << " at window " << alert.window << " queue " << alert.queue << " magnitude "
        << alert.magnitude << " statistic " << alert.statistic;
  }
  // 600 s horizon at the default 30 s window = ~20 windows.
  EXPECT_GE(result.estimates.size(), 18u);
}

TEST(Campaign, ScriptedCampaignsDetectEveryEventWithinBudgetAndStayQuietBefore) {
  for (const std::string& name : CampaignNames()) {
    if (name == "stationary") {
      continue;
    }
    const Campaign c = MakeCampaign(name);
    const CampaignResult result = RunCampaign(c, CampaignRunOptions());
    EXPECT_EQ(result.false_alarms, 0u) << name;
    EXPECT_TRUE(result.AllDetected()) << name;
    EXPECT_LE(result.MaxLatencyWindows(), 6u) << name;
    for (const CampaignEventOutcome& outcome : result.outcomes) {
      EXPECT_TRUE(outcome.detected) << name << ": " << outcome.event.label;
    }
  }
}

TEST(Campaign, ResultEstimatesCarryTheAlertMasks) {
  const Campaign c = MakeCampaign("flash-crowd");
  const CampaignResult result = RunCampaign(c, CampaignRunOptions());
  ASSERT_TRUE(result.AllDetected());
  std::size_t flagged = 0;
  for (const WindowEstimate& e : result.estimates) {
    if ((e.alerts & AlertBit(AlertKind::kRateShift)) != 0) {
      ++flagged;
    }
  }
  EXPECT_GE(flagged, 2u);  // onset + recovery
}

// --- Alert bit-equality across the execution grid ----------------------------------------

struct MonitoredRun {
  std::vector<Alert> alerts;
  std::vector<std::uint32_t> masks;
  std::size_t windows = 0;
};

// Short scripted campaign tuned for the StEM-path grid: a 2x arrival burst at t = 75
// with detectors armed after 2 windows.
Campaign GridCampaign() {
  Campaign c;
  c.name = "grid";
  c.arrival_rate = 4.0;
  c.service_rates = {8.0, 9.0};
  c.horizon = 150.0;
  c.quiet_until = 75.0;
  c.faults.AddArrivalScale(75.0, 150.0, 2.0);
  c.events.push_back({AlertKind::kRateShift, 75.0, 0, "burst"});
  return c;
}

ChangeMonitorOptions GridMonitorOptions() {
  ChangeMonitorOptions options;
  options.rate_cusum.warmup_windows = 2;
  options.service_cusum.warmup_windows = 2;
  options.wait_cusum.warmup_windows = 2;
  options.rate_bocpd.warmup_windows = 2;
  return options;
}

MonitoredRun RunMonitoredFleet(std::size_t lanes, std::size_t sweep_threads,
                               bool pipeline) {
  const Campaign campaign = GridCampaign();
  const QueueingNetwork net = campaign.MakeNetwork();
  LiveSimStream stream(net, campaign.SimOptions(), 61);

  ChangeMonitor monitor(campaign.NumQueues(), GridMonitorOptions());

  ShardedStreamingOptions options;
  options.lanes = lanes;
  options.stream.window.window_duration = 15.0;
  options.stream.stem.iterations = 30;
  options.stream.stem.burn_in = 10;
  options.stream.stem.wait_sweeps = 5;
  options.stream.stem.sharded_sweeps = true;
  options.stream.stem.sharded.shards = 2;
  options.stream.stem.sharded.threads = sweep_threads;
  options.stream.pipeline = pipeline;
  options.stream.window_local_arrival_rate = true;
  options.stream.on_window = monitor.Hook();

  ShardedStreamingEstimator fleet({1.0, 1.0, 1.0}, 71, options);
  fleet.Run(stream);

  MonitoredRun run;
  run.alerts = monitor.Alerts();
  run.masks = monitor.AlertMasks();
  run.windows = monitor.WindowsObserved();
  return run;
}

void ExpectAlertsIdentical(const MonitoredRun& a, const MonitoredRun& b) {
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.masks, b.masks);
  ASSERT_EQ(a.alerts.size(), b.alerts.size());
  for (std::size_t i = 0; i < a.alerts.size(); ++i) {
    EXPECT_EQ(a.alerts[i].kind, b.alerts[i].kind) << "alert " << i;
    EXPECT_EQ(a.alerts[i].detector, b.alerts[i].detector) << "alert " << i;
    EXPECT_EQ(a.alerts[i].window, b.alerts[i].window) << "alert " << i;
    EXPECT_EQ(a.alerts[i].queue, b.alerts[i].queue) << "alert " << i;
    EXPECT_EQ(a.alerts[i].t0, b.alerts[i].t0) << "alert " << i;
    EXPECT_EQ(a.alerts[i].t1, b.alerts[i].t1) << "alert " << i;
    EXPECT_EQ(a.alerts[i].magnitude, b.alerts[i].magnitude) << "alert " << i;
    EXPECT_EQ(a.alerts[i].statistic, b.alerts[i].statistic) << "alert " << i;
  }
}

TEST(CampaignAlerts, BitIdenticalAcrossThreadsPipeliningAndLanesAtFixedK) {
  // The acceptance grid: for each K in {1,2,4}, the full alert log (kinds, windows,
  // magnitudes, statistics — every bit) must be identical across sweep threads {1,2,4}
  // x pipelining {off,on}. The detectors consume the pooled estimate sequence, which
  // is bit-identical across that sub-grid, so the alerts must be too.
  for (const std::size_t lanes : {1u, 2u, 4u}) {
    MonitoredRun reference;
    bool have_reference = false;
    for (const std::size_t threads : {1u, 2u, 4u}) {
      for (const bool pipeline : {false, true}) {
        const MonitoredRun run = RunMonitoredFleet(lanes, threads, pipeline);
        EXPECT_GE(run.windows, 8u) << "lanes=" << lanes;
        if (!have_reference) {
          reference = run;
          have_reference = true;
          // The grid is only meaningful if the campaign actually alerts.
          EXPECT_GE(reference.alerts.size(), 1u) << "lanes=" << lanes;
        } else {
          ExpectAlertsIdentical(reference, run);
        }
      }
    }
  }
}

}  // namespace
}  // namespace qnet
