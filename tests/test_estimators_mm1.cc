// Tests for the baseline estimators and error helpers.

#include "qnet/infer/estimators.h"

#include <cmath>

#include <gtest/gtest.h>

#include "qnet/model/builders.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/check.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

TEST(ObservedMeanService, HandComputedScenario) {
  EventLog log(2);
  log.AddTask(1.0);
  log.AddTask(2.0);
  log.AddVisit(0, 0, 1, 1.0, 3.0);  // service 2.0
  log.AddVisit(1, 0, 1, 2.0, 4.0);  // service 1.0 (starts at 3.0)
  log.BuildQueueLinks();

  const BaselineEstimate only_first = ObservedMeanService(log, {0});
  EXPECT_DOUBLE_EQ(only_first.mean_service[1], 2.0);
  EXPECT_EQ(only_first.counts[1], 1u);
  EXPECT_EQ(only_first.counts[0], 1u);  // the task's initial event

  const BaselineEstimate both = ObservedMeanService(log, {0, 1});
  EXPECT_DOUBLE_EQ(both.mean_service[1], 1.5);

  const BaselineEstimate none = ObservedMeanService(log, {});
  EXPECT_TRUE(std::isnan(none.mean_service[1]));
  EXPECT_EQ(none.counts[1], 0u);
}

TEST(ObservedMeanService, ConvergesToTruthWithAllTasks) {
  const QueueingNetwork net = MakeSingleQueueNetwork(2.0, 5.0);
  Rng rng(3);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(2.0, 5000), rng);
  std::vector<int> all_tasks;
  for (int k = 0; k < log.NumTasks(); ++k) {
    all_tasks.push_back(k);
  }
  const BaselineEstimate est = ObservedMeanService(log, all_tasks);
  EXPECT_NEAR(est.mean_service[1], 0.2, 0.01);
}

TEST(CompleteDataRatesMle, InvertsMeanService) {
  const QueueingNetwork net = MakeTandemNetwork(3.0, {6.0, 9.0});
  Rng rng(5);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(3.0, 2000), rng);
  const auto rates = CompleteDataRatesMle(log);
  const auto mean_service = log.PerQueueMeanService();
  for (std::size_t q = 0; q < rates.size(); ++q) {
    EXPECT_NEAR(rates[q], 1.0 / mean_service[q], 1e-9);
  }
  EXPECT_NEAR(rates[1], 6.0, 0.5);
  EXPECT_NEAR(rates[2], 9.0, 0.8);
}

TEST(WarmStartRates, ResponseBoundOnLightlyLoadedQueue) {
  // rho = 0.2: response ~ service, so the warm start should land near the true rate.
  const QueueingNetwork net = MakeSingleQueueNetwork(1.0, 5.0);
  Rng rng(7);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(1.0, 2000), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.2;
  const Observation obs = scheme.Apply(log, rng);
  const auto rates = WarmStartRates(log, obs);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_NEAR(rates[0], 1.0, 0.2);   // lambda from total count / horizon
  EXPECT_GT(rates[1], 2.5);          // within ~2x of mu = 5 from below
  EXPECT_LT(rates[1], 6.5);
}

TEST(WarmStartRates, ThroughputBoundOnSaturatedQueue) {
  // rho = 2: responses are huge, but the throughput bound n/horizon recovers mu ~ 5.
  const QueueingNetwork net = MakeSingleQueueNetwork(10.0, 5.0);
  Rng rng(9);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(10.0, 2000), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.1;
  const Observation obs = scheme.Apply(log, rng);
  const auto rates = WarmStartRates(log, obs);
  EXPECT_GT(rates[1], 2.0);
  EXPECT_LT(rates[1], 8.0);
}

TEST(WarmStartRates, FallsBackWithNoObservations) {
  const QueueingNetwork net = MakeSingleQueueNetwork(1.0, 5.0);
  Rng rng(11);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(1.0, 50), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.0;
  const Observation obs = scheme.Apply(log, rng);
  const auto rates = WarmStartRates(log, obs, 3.5);
  EXPECT_DOUBLE_EQ(rates[0], 3.5);
  EXPECT_DOUBLE_EQ(rates[1], 3.5);
}

TEST(PerQueueAbsoluteError, SkipsArrivalQueueByDefault) {
  const std::vector<double> estimate = {1.0, 2.0, 3.0};
  const std::vector<double> reference = {0.0, 2.5, 2.0};
  const auto errors = PerQueueAbsoluteError(estimate, reference);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_DOUBLE_EQ(errors[0], 0.5);
  EXPECT_DOUBLE_EQ(errors[1], 1.0);
  const auto with_arrival = PerQueueAbsoluteError(estimate, reference, false);
  ASSERT_EQ(with_arrival.size(), 3u);
  EXPECT_DOUBLE_EQ(with_arrival[0], 1.0);
  EXPECT_THROW(PerQueueAbsoluteError(estimate, {1.0}), Error);
}

}  // namespace
}  // namespace qnet
