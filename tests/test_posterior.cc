// Posterior summaries and multi-chain convergence assessment.

#include "qnet/infer/posterior.h"

#include <gtest/gtest.h>

#include "qnet/infer/initializer.h"
#include "qnet/model/builders.h"
#include "qnet/obs/observation.h"
#include "qnet/sim/simulator.h"
#include "qnet/support/check.h"
#include "qnet/support/math.h"
#include "qnet/support/rng.h"

namespace qnet {
namespace {

TEST(PosteriorSummary, AccumulatesAndSummarizes) {
  const QueueingNetwork net = MakeSingleQueueNetwork(2.0, 5.0);
  Rng rng(3);
  const EventLog log = SimulateWorkload(net, PoissonArrivals(2.0, 100), rng);
  PosteriorSummary summary(net.NumQueues());
  summary.Accumulate(log);
  summary.Accumulate(log);
  EXPECT_EQ(summary.NumSamples(), 2u);
  const auto realized = log.PerQueueMeanService();
  EXPECT_DOUBLE_EQ(summary.MeanService()[1], realized[1]);
  EXPECT_DOUBLE_EQ(summary.ServiceQuantile(0.5)[1], realized[1]);
  EXPECT_EQ(summary.ServiceSeries(1).size(), 2u);
  EXPECT_THROW(summary.ServiceSeries(7), Error);
}

TEST(MultiChain, ConvergesWithRhatNearOne) {
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
  const auto rates = net.ExponentialRates();
  Rng rng(5);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 200), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.3;
  const Observation obs = scheme.Apply(truth, rng);

  MultiChainOptions options;
  options.chains = 3;
  options.sweeps = 150;
  options.burn_in = 50;
  const MultiChainResult result = RunMultiChainGibbs(truth, obs, rates, rng, options);
  EXPECT_LT(result.max_r_hat, 1.3);
  EXPECT_EQ(result.pooled.NumSamples(), 3u * 100u);
  // Pooled posterior mean near the realized truth.
  EXPECT_NEAR(result.pooled.MeanService()[1], truth.PerQueueMeanService()[1], 0.06);
  // Credible interval brackets the posterior mean.
  const auto lo = result.pooled.ServiceQuantile(0.05);
  const auto hi = result.pooled.ServiceQuantile(0.95);
  EXPECT_LT(lo[1], result.pooled.MeanService()[1]);
  EXPECT_GT(hi[1], result.pooled.MeanService()[1]);
}

TEST(MultiChain, IntervalWidthShrinksWithMoreData) {
  // Credible intervals at 60% observed should be no wider than at 10% observed.
  const QueueingNetwork net = MakeSingleQueueNetwork(2.0, 5.0);
  const auto rates = net.ExponentialRates();
  const auto width_at = [&](double fraction) {
    Rng rng(7);
    const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 400), rng);
    TaskSamplingScheme scheme;
    scheme.fraction = fraction;
    const Observation obs = scheme.Apply(truth, rng);
    MultiChainOptions options;
    options.chains = 2;
    options.sweeps = 120;
    options.burn_in = 40;
    const MultiChainResult result = RunMultiChainGibbs(truth, obs, rates, rng, options);
    return result.pooled.ServiceQuantile(0.95)[1] - result.pooled.ServiceQuantile(0.05)[1];
  };
  EXPECT_LT(width_at(0.6), width_at(0.1) + 1e-6);
}

TEST(PosteriorSummary, TailResponseEstimateTracksRealizedP95) {
  // Posterior p95 per-queue response from a 30% trace should land near the realized p95 —
  // the tail-latency estimate operators actually watch.
  const QueueingNetwork net = MakeSingleQueueNetwork(3.0, 5.0);  // rho = 0.6: real tail
  const auto rates = net.ExponentialRates();
  Rng rng(21);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(3.0, 600), rng);
  TaskSamplingScheme scheme;
  scheme.fraction = 0.3;
  const Observation obs = scheme.Apply(truth, rng);
  GibbsSampler sampler(InitializeFeasible(truth, obs, rates, rng), obs, rates);
  PosteriorSummary summary(net.NumQueues(), 0.95);
  for (int sweep = 0; sweep < 120; ++sweep) {
    sampler.Sweep(rng);
    if (sweep >= 40) {
      summary.Accumulate(sampler.State());
    }
  }
  const double realized_p95 = truth.PerQueueResponseQuantile(0.95)[1];
  EXPECT_NEAR(summary.MeanTailResponse()[1], realized_p95, 0.3 * realized_p95);
}

TEST(PosteriorSummary, RateDrawsAreReciprocalSweepMeansAndMomentConsistent) {
  // The parameter-draw accessor: draw i must be the reciprocal of the i-th accumulated
  // per-queue mean service time, so draw moments/quantiles are consistent with the
  // summary's own series on the reciprocal scale.
  const QueueingNetwork net = MakeTandemNetwork(2.0, {4.0, 3.0});
  Rng rng(17);
  PosteriorSummary summary(net.NumQueues());
  for (int i = 0; i < 5; ++i) {
    const EventLog log = SimulateWorkload(net, PoissonArrivals(2.0, 80), rng);
    summary.Accumulate(log);
  }
  ASSERT_EQ(summary.NumSamples(), 5u);
  for (std::size_t draw = 0; draw < summary.NumSamples(); ++draw) {
    const auto rates = summary.RateDraw(draw);
    ASSERT_EQ(rates.size(), static_cast<std::size_t>(net.NumQueues()));
    for (int q = 0; q < net.NumQueues(); ++q) {
      EXPECT_DOUBLE_EQ(rates[static_cast<std::size_t>(q)],
                       1.0 / summary.ServiceSeries(q)[draw]);
    }
  }
  // Moment consistency: the mean of the reciprocal draws equals the mean service series
  // mapped through 1/x pointwise (same data, same order).
  for (int q = 0; q < net.NumQueues(); ++q) {
    double mean_rate = 0.0;
    for (std::size_t draw = 0; draw < summary.NumSamples(); ++draw) {
      mean_rate += summary.RateDraw(draw)[static_cast<std::size_t>(q)];
    }
    mean_rate /= static_cast<double>(summary.NumSamples());
    double expected = 0.0;
    for (const double s : summary.ServiceSeries(q)) {
      expected += 1.0 / s;
    }
    expected /= static_cast<double>(summary.NumSamples());
    EXPECT_DOUBLE_EQ(mean_rate, expected);
  }
  // Quantile consistency: 1/x is decreasing, so the q-quantile of the rates is the
  // (1-q)-quantile of the service series, reciprocated.
  std::vector<double> rate_series;
  for (std::size_t draw = 0; draw < summary.NumSamples(); ++draw) {
    rate_series.push_back(summary.RateDraw(draw)[1]);
  }
  EXPECT_NEAR(Quantile(rate_series, 1.0), 1.0 / summary.ServiceQuantile(0.0)[1], 1e-12);
  EXPECT_NEAR(Quantile(rate_series, 0.0), 1.0 / summary.ServiceQuantile(1.0)[1], 1e-12);
  // Out-of-range draw indices are contract violations.
  EXPECT_THROW(summary.RateDraw(5), Error);
}

TEST(PosteriorSummary, RateDrawsSurviveMergeInChainOrder) {
  const QueueingNetwork net = MakeSingleQueueNetwork(2.0, 5.0);
  Rng rng(29);
  const EventLog log_a = SimulateWorkload(net, PoissonArrivals(2.0, 60), rng);
  const EventLog log_b = SimulateWorkload(net, PoissonArrivals(2.0, 60), rng);
  PosteriorSummary first(net.NumQueues());
  first.Accumulate(log_a);
  PosteriorSummary second(net.NumQueues());
  second.Accumulate(log_b);
  first.Merge(second);
  ASSERT_EQ(first.NumSamples(), 2u);
  EXPECT_DOUBLE_EQ(first.RateDraw(0)[1], 1.0 / log_a.PerQueueMeanService()[1]);
  EXPECT_DOUBLE_EQ(first.RateDraw(1)[1], 1.0 / log_b.PerQueueMeanService()[1]);
}

TEST(MultiChain, GuardsBadOptions) {
  const QueueingNetwork net = MakeSingleQueueNetwork(2.0, 5.0);
  Rng rng(9);
  const EventLog truth = SimulateWorkload(net, PoissonArrivals(2.0, 20), rng);
  const Observation obs = Observation::FullyObserved(truth);
  MultiChainOptions options;
  options.chains = 1;
  EXPECT_THROW(RunMultiChainGibbs(truth, obs, net.ExponentialRates(), rng, options), Error);
}

}  // namespace
}  // namespace qnet
